package hmp

import (
	"evr/internal/geom"
	"evr/internal/headtrace"
)

// Predictor forecasts a head orientation a number of frames ahead from the
// trace prefix up to the current frame.
type Predictor interface {
	// Predict returns the expected orientation horizon frames after frame
	// f, using only samples up to and including f.
	Predict(tr headtrace.Trace, f, horizon int) geom.Orientation
	Name() string
}

// LinearPredictor extrapolates at the current angular velocity — the
// standard constant-velocity baseline real systems use, and a measure of
// how generous the paper's perfect-prediction assumption (§8.5) is: its
// accuracy decays quickly with horizon on saccadic head motion.
type LinearPredictor struct {
	// VelocityWindow is how many trailing frames estimate the velocity.
	VelocityWindow int
}

// Name implements Predictor.
func (LinearPredictor) Name() string { return "linear" }

// Predict implements Predictor.
func (p LinearPredictor) Predict(tr headtrace.Trace, f, horizon int) geom.Orientation {
	if len(tr.Samples) == 0 {
		return geom.Orientation{}
	}
	if f < 0 {
		f = 0
	}
	if f >= len(tr.Samples) {
		f = len(tr.Samples) - 1
	}
	w := p.VelocityWindow
	if w < 1 {
		w = 3
	}
	back := f - w
	if back < 0 {
		back = 0
	}
	cur := tr.Samples[f].O
	if back == f {
		return cur
	}
	prev := tr.Samples[back].O
	span := float64(f - back)
	scale := float64(horizon) / span
	return geom.Orientation{
		Yaw:   cur.Yaw + geom.WrapAngle(cur.Yaw-prev.Yaw)*scale,
		Pitch: cur.Pitch + (cur.Pitch-prev.Pitch)*scale,
		Roll:  cur.Roll,
	}.Normalize()
}

// OraclePredictor adapts Oracle to the Predictor interface: the §8.5
// perfect predictor.
type OraclePredictor struct{}

// Name implements Predictor.
func (OraclePredictor) Name() string { return "oracle" }

// Predict implements Predictor.
func (OraclePredictor) Predict(tr headtrace.Trace, f, horizon int) geom.Orientation {
	return NewOracle(tr).Predict(f, horizon)
}

// MeasureAccuracy returns the fraction of frames where the prediction lands
// within tolRad of the true orientation, over a whole trace.
func MeasureAccuracy(p Predictor, tr headtrace.Trace, horizon int, tolRad float64) float64 {
	if len(tr.Samples) == 0 {
		return 1
	}
	hits := 0
	n := 0
	for f := 0; f+horizon < len(tr.Samples); f++ {
		pred := p.Predict(tr, f, horizon)
		truth := tr.Samples[f+horizon].O
		if pred.AngularDistance(truth) <= tolRad {
			hits++
		}
		n++
	}
	if n == 0 {
		return 1
	}
	return float64(hits) / float64(n)
}
