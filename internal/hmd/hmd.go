// Package hmd describes the head-mounted display of the evaluation platform
// and replays IMU traces into it.
//
// The paper's client (§8.1) pairs a 2560×1440 AMOLED panel (as in the
// Samsung Gear VR) with the Razer OSVR HDK2's 110°×110° field of view, and
// drives experiments by replaying recorded head-movement traces as IMU
// readings.
package hmd

import (
	"fmt"

	"evr/internal/geom"
	"evr/internal/headtrace"
	"evr/internal/projection"
)

// Config describes an HMD.
type Config struct {
	DisplayW, DisplayH int     // panel resolution in pixels
	FOVXDeg, FOVYDeg   float64 // field of view in degrees
}

// OSVRHDK2 returns the paper's evaluation HMD: 2560×1440 panel, 110°×110°
// FOV (§8.1).
func OSVRHDK2() Config {
	return Config{DisplayW: 2560, DisplayH: 1440, FOVXDeg: 110, FOVYDeg: 110}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.DisplayW <= 0 || c.DisplayH <= 0 {
		return fmt.Errorf("hmd: display %dx%d must be positive", c.DisplayW, c.DisplayH)
	}
	if c.FOVXDeg <= 0 || c.FOVXDeg >= 180 || c.FOVYDeg <= 0 || c.FOVYDeg >= 180 {
		return fmt.Errorf("hmd: FOV %v°x%v° out of (0, 180)", c.FOVXDeg, c.FOVYDeg)
	}
	return nil
}

// Viewport returns the PT output surface for this HMD at full panel
// resolution.
func (c Config) Viewport() projection.Viewport {
	return projection.Viewport{
		Width:  c.DisplayW,
		Height: c.DisplayH,
		FOVX:   geom.Radians(c.FOVXDeg),
		FOVY:   geom.Radians(c.FOVYDeg),
	}
}

// ScaledViewport returns a proportionally reduced viewport for pixel-level
// simulation at 1/scale of the panel's linear resolution, preserving the
// FOV. Energy models always use the nominal viewport; the scaled one keeps
// pixel-exact experiments tractable.
func (c Config) ScaledViewport(scale int) projection.Viewport {
	if scale < 1 {
		scale = 1
	}
	vp := c.Viewport()
	vp.Width /= scale
	vp.Height /= scale
	return vp
}

// IMU replays a head trace as per-frame sensor readings — the trace-driven
// methodology of §8.1.
type IMU struct {
	trace headtrace.Trace
}

// NewIMU wraps a trace for replay.
func NewIMU(trace headtrace.Trace) *IMU { return &IMU{trace: trace} }

// Frames returns the number of samples available.
func (i *IMU) Frames() int { return len(i.trace.Samples) }

// Trace exposes the underlying head trace — head-motion predictors need
// the raw sample history, not just the instantaneous orientation.
func (i *IMU) Trace() headtrace.Trace { return i.trace }

// At returns the head orientation at frame index f, clamping past either
// end of the trace.
func (i *IMU) At(f int) geom.Orientation {
	if len(i.trace.Samples) == 0 {
		return geom.Orientation{}
	}
	if f < 0 {
		f = 0
	}
	if f >= len(i.trace.Samples) {
		f = len(i.trace.Samples) - 1
	}
	return i.trace.Samples[f].O
}
