package hmd

import (
	"testing"

	"evr/internal/geom"
	"evr/internal/headtrace"
	"evr/internal/scene"
)

func TestOSVRHDK2(t *testing.T) {
	c := OSVRHDK2()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.DisplayW != 2560 || c.DisplayH != 1440 || c.FOVXDeg != 110 || c.FOVYDeg != 110 {
		t.Errorf("HDK2 config = %+v", c)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{DisplayW: 0, DisplayH: 10, FOVXDeg: 90, FOVYDeg: 90},
		{DisplayW: 10, DisplayH: 10, FOVXDeg: 0, FOVYDeg: 90},
		{DisplayW: 10, DisplayH: 10, FOVXDeg: 90, FOVYDeg: 180},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestViewport(t *testing.T) {
	vp := OSVRHDK2().Viewport()
	if vp.Width != 2560 || vp.Height != 1440 {
		t.Errorf("viewport %dx%d", vp.Width, vp.Height)
	}
	if vp.FOVX != geom.Radians(110) {
		t.Errorf("FOVX = %v", vp.FOVX)
	}
}

func TestScaledViewport(t *testing.T) {
	vp := OSVRHDK2().ScaledViewport(40)
	if vp.Width != 64 || vp.Height != 36 {
		t.Errorf("scaled viewport %dx%d, want 64x36", vp.Width, vp.Height)
	}
	if vp.FOVX != geom.Radians(110) {
		t.Error("scaling must preserve FOV")
	}
	if v := OSVRHDK2().ScaledViewport(0); v.Width != 2560 {
		t.Error("scale < 1 should clamp to 1")
	}
}

func TestIMUReplay(t *testing.T) {
	v, _ := scene.ByName("RS")
	tr := headtrace.Generate(v, 0)
	imu := NewIMU(tr)
	if imu.Frames() != len(tr.Samples) {
		t.Fatalf("frames = %d", imu.Frames())
	}
	if imu.At(5) != tr.Samples[5].O {
		t.Error("replay mismatch")
	}
	if imu.At(-1) != tr.Samples[0].O {
		t.Error("negative index should clamp to start")
	}
	if imu.At(1<<20) != tr.Samples[len(tr.Samples)-1].O {
		t.Error("overflow index should clamp to end")
	}
	empty := NewIMU(headtrace.Trace{})
	if empty.At(0) != (geom.Orientation{}) {
		t.Error("empty trace should return identity")
	}
}
