package geom

import "math"

// Quat is a rotation quaternion (W + Xi + Yj + Zk). Real IMUs report head
// pose as quaternions; this type provides the conversions to and from the
// yaw/pitch Euler form the rest of the pipeline uses, plus spherical linear
// interpolation for trace resampling.
type Quat struct {
	W, X, Y, Z float64
}

// IdentityQuat returns the no-rotation quaternion.
func IdentityQuat() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds the quaternion rotating by angle radians about
// the (not necessarily unit) axis.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Normalize()
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// QuatFromOrientation converts a yaw/pitch/roll orientation into the
// equivalent quaternion: q = Ry(yaw) · Rx(-pitch) · Rz(roll), matching
// Orientation.Matrix.
func QuatFromOrientation(o Orientation) Quat {
	qy := QuatFromAxisAngle(Vec3{Y: 1}, o.Yaw)
	qx := QuatFromAxisAngle(Vec3{X: 1}, -o.Pitch)
	qz := QuatFromAxisAngle(Vec3{Z: 1}, o.Roll)
	return qy.Mul(qx).Mul(qz)
}

// Mul returns the Hamilton product q·r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns the unit quaternion; the zero quaternion becomes
// identity.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n == 0 {
		return IdentityQuat()
	}
	return Quat{W: q.W / n, X: q.X / n, Y: q.Y / n, Z: q.Z / n}
}

// Rotate applies the rotation to a vector: q·v·q*.
func (q Quat) Rotate(v Vec3) Vec3 {
	p := Quat{X: v.X, Y: v.Y, Z: v.Z}
	r := q.Mul(p).Mul(q.Conj())
	return Vec3{X: r.X, Y: r.Y, Z: r.Z}
}

// Matrix returns the equivalent rotation matrix.
func (q Quat) Matrix() Mat3 {
	q = q.Normalize()
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}
}

// Orientation extracts yaw/pitch/roll per the Orientation convention
// (gaze = rotated +Z; positive pitch up).
func (q Quat) Orientation() Orientation {
	fwd := q.Rotate(Vec3{Z: 1})
	o := LookAt(fwd)
	// Recover roll: the rotated +X axis, expressed after undoing yaw and
	// pitch, reveals the residual rotation about the gaze axis.
	inv := QuatFromOrientation(Orientation{Yaw: o.Yaw, Pitch: o.Pitch}).Conj()
	residual := inv.Mul(q)
	right := residual.Rotate(Vec3{X: 1})
	o.Roll = math.Atan2(right.Y, right.X)
	return o.Normalize()
}

// Dot returns the 4-D dot product.
func (q Quat) Dot(r Quat) float64 {
	return q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
}

// Slerp spherically interpolates between two unit quaternions, taking the
// short arc. t=0 yields q, t=1 yields r.
func (q Quat) Slerp(r Quat, t float64) Quat {
	q = q.Normalize()
	r = r.Normalize()
	d := q.Dot(r)
	if d < 0 { // short arc: quaternions double-cover rotations
		r = Quat{W: -r.W, X: -r.X, Y: -r.Y, Z: -r.Z}
		d = -d
	}
	if d > 0.9995 {
		// Nearly parallel: fall back to normalized lerp.
		return Quat{
			W: q.W + (r.W-q.W)*t,
			X: q.X + (r.X-q.X)*t,
			Y: q.Y + (r.Y-q.Y)*t,
			Z: q.Z + (r.Z-q.Z)*t,
		}.Normalize()
	}
	theta := math.Acos(d)
	sinTheta := math.Sin(theta)
	a := math.Sin((1-t)*theta) / sinTheta
	b := math.Sin(t*theta) / sinTheta
	return Quat{
		W: a*q.W + b*r.W,
		X: a*q.X + b*r.X,
		Y: a*q.Y + b*r.Y,
		Z: a*q.Z + b*r.Z,
	}
}

// AngleTo returns the rotation angle between two unit quaternions.
func (q Quat) AngleTo(r Quat) float64 {
	d := math.Abs(q.Normalize().Dot(r.Normalize()))
	if d > 1 {
		d = 1
	}
	return 2 * math.Acos(d)
}
