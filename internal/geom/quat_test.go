package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randOrientation(rng *rand.Rand) Orientation {
	return Orientation{
		Yaw:   (rng.Float64()*2 - 1) * math.Pi * 0.99,
		Pitch: (rng.Float64()*2 - 1) * math.Pi / 2 * 0.95,
		Roll:  (rng.Float64()*2 - 1) * math.Pi * 0.9,
	}
}

func TestIdentityQuat(t *testing.T) {
	q := IdentityQuat()
	v := Vec3{1, 2, 3}
	if got := q.Rotate(v); !vecAlmostEq(got, v, eps) {
		t.Errorf("identity rotation moved the vector: %v", got)
	}
	if q.Norm() != 1 {
		t.Errorf("identity norm = %v", q.Norm())
	}
}

func TestQuatAxisAngle(t *testing.T) {
	// 90° about +Y takes +Z to +X (same as RotationY).
	q := QuatFromAxisAngle(Vec3{Y: 1}, math.Pi/2)
	if got := q.Rotate(Vec3{Z: 1}); !vecAlmostEq(got, Vec3{X: 1}, 1e-12) {
		t.Errorf("quat rotation = %v, want +X", got)
	}
}

func TestQuatMatchesOrientationMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for i := 0; i < 200; i++ {
		o := randOrientation(rng)
		q := QuatFromOrientation(o)
		m := o.Matrix()
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if !vecAlmostEq(q.Rotate(v), m.Apply(v), 1e-9) {
			t.Fatalf("quat and matrix disagree for %+v", o)
		}
		// And the explicit matrix conversion agrees too.
		qm := q.Matrix()
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				if !almostEq(qm[r][c], m[r][c], 1e-9) {
					t.Fatalf("Matrix() disagrees at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestQuatOrientationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 300; i++ {
		o := randOrientation(rng)
		back := QuatFromOrientation(o).Orientation()
		if !almostEq(WrapAngle(back.Yaw-o.Yaw), 0, 1e-9) ||
			!almostEq(back.Pitch, o.Pitch, 1e-9) ||
			!almostEq(WrapAngle(back.Roll-o.Roll), 0, 1e-9) {
			t.Fatalf("round trip %+v -> %+v", o, back)
		}
	}
}

func TestQuatMulComposition(t *testing.T) {
	// Rotating by q then r equals rotating by r·q.
	q := QuatFromAxisAngle(Vec3{Y: 1}, 0.7)
	r := QuatFromAxisAngle(Vec3{X: 1}, -0.3)
	v := Vec3{0.2, -0.5, 0.8}
	a := r.Rotate(q.Rotate(v))
	b := r.Mul(q).Rotate(v)
	if !vecAlmostEq(a, b, 1e-12) {
		t.Errorf("composition broken: %v vs %v", a, b)
	}
}

func TestQuatConjInverts(t *testing.T) {
	prop := func(ax, ay, az, ang float64) bool {
		axis := Vec3{math.Mod(ax, 3) + 0.1, math.Mod(ay, 3), math.Mod(az, 3)}
		q := QuatFromAxisAngle(axis, math.Mod(ang, math.Pi))
		v := Vec3{1, -2, 0.5}
		return vecAlmostEq(q.Conj().Rotate(q.Rotate(v)), v, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(102))}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeZeroQuat(t *testing.T) {
	if got := (Quat{}).Normalize(); got != IdentityQuat() {
		t.Errorf("zero quat normalized to %+v", got)
	}
}

func TestSlerpEndpointsAndMidpoint(t *testing.T) {
	q := QuatFromAxisAngle(Vec3{Y: 1}, 0)
	r := QuatFromAxisAngle(Vec3{Y: 1}, math.Pi/2)
	if got := q.Slerp(r, 0); got.AngleTo(q) > 1e-9 {
		t.Error("slerp(0) != q")
	}
	if got := q.Slerp(r, 1); got.AngleTo(r) > 1e-9 {
		t.Error("slerp(1) != r")
	}
	mid := q.Slerp(r, 0.5)
	want := QuatFromAxisAngle(Vec3{Y: 1}, math.Pi/4)
	if mid.AngleTo(want) > 1e-9 {
		t.Errorf("slerp midpoint off by %v rad", mid.AngleTo(want))
	}
}

func TestSlerpConstantAngularVelocity(t *testing.T) {
	q := IdentityQuat()
	r := QuatFromAxisAngle(Vec3{X: 1, Y: 1}.Normalize(), 2.0)
	prev := q
	var steps []float64
	for i := 1; i <= 10; i++ {
		cur := q.Slerp(r, float64(i)/10)
		steps = append(steps, prev.AngleTo(cur))
		prev = cur
	}
	for i := 1; i < len(steps); i++ {
		if math.Abs(steps[i]-steps[0]) > 1e-9 {
			t.Fatalf("slerp steps uneven: %v", steps)
		}
	}
}

func TestSlerpTakesShortArc(t *testing.T) {
	// q and -q represent the same rotation; slerp must not swing around
	// the long way.
	q := QuatFromAxisAngle(Vec3{Y: 1}, 0.1)
	r := QuatFromAxisAngle(Vec3{Y: 1}, 0.2)
	neg := Quat{W: -r.W, X: -r.X, Y: -r.Y, Z: -r.Z}
	mid := q.Slerp(neg, 0.5)
	want := QuatFromAxisAngle(Vec3{Y: 1}, 0.15)
	if mid.AngleTo(want) > 1e-9 {
		t.Errorf("slerp took the long arc: off by %v", mid.AngleTo(want))
	}
}

func TestSlerpNearlyParallel(t *testing.T) {
	q := QuatFromAxisAngle(Vec3{Y: 1}, 1e-7)
	r := QuatFromAxisAngle(Vec3{Y: 1}, 2e-7)
	mid := q.Slerp(r, 0.5)
	if math.Abs(mid.Norm()-1) > 1e-12 {
		t.Errorf("near-parallel slerp denormalized: %v", mid.Norm())
	}
}

func TestAngleTo(t *testing.T) {
	q := IdentityQuat()
	r := QuatFromAxisAngle(Vec3{Z: 1}, 1.2)
	if got := q.AngleTo(r); !almostEq(got, 1.2, 1e-12) {
		t.Errorf("AngleTo = %v, want 1.2", got)
	}
	if got := q.AngleTo(q); !almostEq(got, 0, 1e-9) {
		t.Errorf("self angle = %v", got)
	}
}
