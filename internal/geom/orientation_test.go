package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSphericalCartesianRoundTrip(t *testing.T) {
	f := func(theta, phi float64) bool {
		s := Spherical{
			Theta: WrapAngle(math.Mod(theta, math.Pi)),
			Phi:   math.Mod(phi, math.Pi/2) * 0.99,
		}
		got := FromCartesian(s.ToCartesian())
		return almostEq(WrapAngle(got.Theta-s.Theta), 0, 1e-9) && almostEq(got.Phi, s.Phi, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestSphericalAxes(t *testing.T) {
	cases := []struct {
		s Spherical
		v Vec3
	}{
		{Spherical{0, 0}, Vec3{0, 0, 1}},
		{Spherical{math.Pi / 2, 0}, Vec3{1, 0, 0}},
		{Spherical{-math.Pi / 2, 0}, Vec3{-1, 0, 0}},
		{Spherical{0, math.Pi / 2}, Vec3{0, 1, 0}},
		{Spherical{0, -math.Pi / 2}, Vec3{0, -1, 0}},
	}
	for _, c := range cases {
		if got := c.s.ToCartesian(); !vecAlmostEq(got, c.v, eps) {
			t.Errorf("ToCartesian(%+v) = %v, want %v", c.s, got, c.v)
		}
	}
}

func TestFromCartesianZero(t *testing.T) {
	if got := FromCartesian(Vec3{}); got != (Spherical{}) {
		t.Errorf("FromCartesian(0) = %+v", got)
	}
}

func TestOrientationForward(t *testing.T) {
	// Identity orientation looks along +Z.
	if got := (Orientation{}).Forward(); !vecAlmostEq(got, Vec3{0, 0, 1}, eps) {
		t.Errorf("identity forward = %v", got)
	}
	// Positive yaw of 90° looks along +X.
	if got := (Orientation{Yaw: math.Pi / 2}).Forward(); !vecAlmostEq(got, Vec3{1, 0, 0}, eps) {
		t.Errorf("yaw 90° forward = %v", got)
	}
	// Positive pitch of 90° looks straight up (+Y).
	if got := (Orientation{Pitch: math.Pi / 2}).Forward(); !vecAlmostEq(got, Vec3{0, 1, 0}, eps) {
		t.Errorf("pitch 90° forward = %v", got)
	}
}

func TestOrientationMatchesSpherical(t *testing.T) {
	// Orientation{yaw,pitch}.Forward must agree with Spherical{yaw,pitch}.
	f := func(yaw, pitch float64) bool {
		yaw = math.Mod(yaw, math.Pi)
		pitch = math.Mod(pitch, math.Pi/2) * 0.99
		o := Orientation{Yaw: yaw, Pitch: pitch}
		s := Spherical{Theta: yaw, Phi: pitch}
		return vecAlmostEq(o.Forward(), s.ToCartesian(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestLookAtInvertsForward(t *testing.T) {
	f := func(yaw, pitch float64) bool {
		o := Orientation{Yaw: math.Mod(yaw, math.Pi), Pitch: math.Mod(pitch, math.Pi/2) * 0.99}
		got := LookAt(o.Forward())
		return almostEq(WrapAngle(got.Yaw-o.Yaw), 0, 1e-9) && almostEq(got.Pitch, o.Pitch, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestAngularDistance(t *testing.T) {
	a := Orientation{Yaw: 0}
	b := Orientation{Yaw: math.Pi / 2}
	if got := a.AngularDistance(b); !almostEq(got, math.Pi/2, eps) {
		t.Errorf("distance = %v, want π/2", got)
	}
	if got := a.AngularDistance(a); !almostEq(got, 0, eps) {
		t.Errorf("self distance = %v", got)
	}
	c := Orientation{Yaw: math.Pi}
	if got := a.AngularDistance(c); !almostEq(got, math.Pi, eps) {
		t.Errorf("antipodal distance = %v, want π", got)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-2.5 * math.Pi, -math.Pi / 2},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !almostEq(got, c.want, eps) {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestOrientationLerpShortWay(t *testing.T) {
	a := Orientation{Yaw: Radians(170)}
	b := Orientation{Yaw: Radians(-170)}
	mid := a.Lerp(b, 0.5)
	// Short way crosses ±180°, so the midpoint is 180°, not 0°.
	if !almostEq(math.Abs(mid.Yaw), math.Pi, 1e-9) {
		t.Errorf("lerp midpoint yaw = %v°, want ±180°", Degrees(mid.Yaw))
	}
}

func TestNormalizeClampsPitch(t *testing.T) {
	o := Orientation{Pitch: 2.0}.Normalize()
	if o.Pitch != math.Pi/2 {
		t.Errorf("pitch = %v, want clamped to π/2", o.Pitch)
	}
	o = Orientation{Pitch: -2.0}.Normalize()
	if o.Pitch != -math.Pi/2 {
		t.Errorf("pitch = %v, want clamped to -π/2", o.Pitch)
	}
}

func TestDegreesRadians(t *testing.T) {
	if !almostEq(Degrees(math.Pi), 180, eps) || !almostEq(Radians(180), math.Pi, eps) {
		t.Error("degree/radian conversion broken")
	}
	f := func(x float64) bool {
		x = math.Mod(x, 1e6)
		return almostEq(Radians(Degrees(x)), x, math.Abs(x)*1e-12+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
