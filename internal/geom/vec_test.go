package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVec3Arithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); !vecAlmostEq(got, Vec3{-3, 7, 3.5}, eps) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !vecAlmostEq(got, Vec3{5, -3, 2.5}, eps) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !vecAlmostEq(got, Vec3{2, 4, 6}, eps) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); !almostEq(got, -4+10+1.5, eps) {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	c := a.Cross(b)
	if !almostEq(c.Dot(a), 0, eps) || !almostEq(c.Dot(b), 0, eps) {
		t.Errorf("cross product not orthogonal: %v", c)
	}
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); !vecAlmostEq(got, Vec3{0, 0, 1}, eps) {
		t.Errorf("x cross y = %v, want z", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 4, 12}.Normalize()
	if !almostEq(v.Norm(), 1, eps) {
		t.Errorf("norm after normalize = %v", v.Norm())
	}
	zero := Vec3{}
	if got := zero.Normalize(); got != zero {
		t.Errorf("normalize zero = %v", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Lerp(b, 0); !vecAlmostEq(got, a, eps) {
		t.Errorf("lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !vecAlmostEq(got, b, eps) {
		t.Errorf("lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !vecAlmostEq(got, Vec3{2.5, -1.5, 4.5}, eps) {
		t.Errorf("lerp(0.5) = %v", got)
	}
}

func TestRotationMatricesAreOrthonormal(t *testing.T) {
	for _, m := range []Mat3{RotationX(0.7), RotationY(-1.3), RotationZ(2.9)} {
		id := m.Mul(m.Transpose())
		want := Identity3()
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if !almostEq(id[i][j], want[i][j], eps) {
					t.Fatalf("R·Rᵀ != I: %v", id)
				}
			}
		}
	}
}

func TestRotationDirections(t *testing.T) {
	// Yaw +90° about +Y takes +Z to +X.
	v := RotationY(math.Pi / 2).Apply(Vec3{0, 0, 1})
	if !vecAlmostEq(v, Vec3{1, 0, 0}, eps) {
		t.Errorf("RotY(90°)·z = %v, want +x", v)
	}
	// Rotation about +X by +90° takes +Y to +Z.
	v = RotationX(math.Pi / 2).Apply(Vec3{0, 1, 0})
	if !vecAlmostEq(v, Vec3{0, 0, 1}, eps) {
		t.Errorf("RotX(90°)·y = %v, want +z", v)
	}
	// Rotation about +Z by +90° takes +X to +Y.
	v = RotationZ(math.Pi / 2).Apply(Vec3{1, 0, 0})
	if !vecAlmostEq(v, Vec3{0, 1, 0}, eps) {
		t.Errorf("RotZ(90°)·x = %v, want +y", v)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	a, b, c := RotationX(0.3), RotationY(1.1), RotationZ(-0.8)
	l := a.Mul(b).Mul(c)
	r := a.Mul(b.Mul(c))
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(l[i][j], r[i][j], eps) {
				t.Fatalf("associativity violated at (%d,%d): %v vs %v", i, j, l[i][j], r[i][j])
			}
		}
	}
}

func TestRotationPreservesNormProperty(t *testing.T) {
	f := func(x, y, z, ax, ay, az float64) bool {
		// Clamp angles to a sane range to avoid huge Sincos arguments.
		ax = math.Mod(ax, math.Pi)
		ay = math.Mod(ay, math.Pi)
		az = math.Mod(az, math.Pi)
		v := Vec3{math.Mod(x, 100), math.Mod(y, 100), math.Mod(z, 100)}
		m := RotationX(ax).Mul(RotationY(ay)).Mul(RotationZ(az))
		return almostEq(m.Apply(v).Norm(), v.Norm(), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
