package geom

import "math"

// Orientation is a head pose expressed as intrinsic yaw-pitch-roll Euler
// angles in radians, the representation the paper's IMU traces use. Yaw
// rotates about +Y, pitch about +X, roll about +Z. In the 360°-video setting
// only rotational motion is modeled (§2); there is no translation.
type Orientation struct {
	Yaw, Pitch, Roll float64
}

// Matrix returns the rotation matrix that takes the canonical forward frame
// into the head frame: R = Ry(yaw) · Rx(-pitch) · Rz(roll), so that positive
// pitch tilts the gaze towards +Y ("up"). This is the pair of "two 3×3
// rotation matrices" the paper's perspective-update stage multiplies by
// (§6.2); roll is usually zero for HMD video viewing, in which case the
// product collapses to exactly two sparse rotations.
func (o Orientation) Matrix() Mat3 {
	return RotationY(o.Yaw).Mul(RotationX(-o.Pitch)).Mul(RotationZ(o.Roll))
}

// Forward returns the unit gaze direction for the orientation.
func (o Orientation) Forward() Vec3 {
	return o.Matrix().Apply(Vec3{0, 0, 1})
}

// Normalize wraps yaw into [-π, π] and clamps pitch into [-π/2, π/2].
func (o Orientation) Normalize() Orientation {
	o.Yaw = WrapAngle(o.Yaw)
	if o.Pitch > math.Pi/2 {
		o.Pitch = math.Pi / 2
	}
	if o.Pitch < -math.Pi/2 {
		o.Pitch = -math.Pi / 2
	}
	o.Roll = WrapAngle(o.Roll)
	return o
}

// AngularDistance returns the angle in radians between the gaze directions of
// o and p. It is the geodesic distance on the viewing sphere and is what the
// FOV checker compares against the FOV margin.
func (o Orientation) AngularDistance(p Orientation) float64 {
	d := o.Forward().Dot(p.Forward())
	if d > 1 {
		d = 1
	}
	if d < -1 {
		d = -1
	}
	return math.Acos(d)
}

// Lerp interpolates between two orientations component-wise, taking the
// short way around for yaw. t=0 yields o, t=1 yields p.
func (o Orientation) Lerp(p Orientation, t float64) Orientation {
	dy := WrapAngle(p.Yaw - o.Yaw)
	dp := p.Pitch - o.Pitch
	dr := WrapAngle(p.Roll - o.Roll)
	return Orientation{
		Yaw:   WrapAngle(o.Yaw + dy*t),
		Pitch: o.Pitch + dp*t,
		Roll:  WrapAngle(o.Roll + dr*t),
	}.Normalize()
}

// WrapAngle wraps a into (-π, π]. Non-finite input returns NaN. Magnitudes
// beyond ±1e3 rad are range-reduced with math.Mod first; the iterative
// reduction is kept for the common small range because its float rounding is
// what every existing caller (and the byte-exact render goldens) observe.
func WrapAngle(a float64) float64 {
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return math.NaN()
	}
	if a > 1e3 || a < -1e3 {
		a = math.Mod(a, 2*math.Pi)
	}
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Spherical holds spherical coordinates on the unit sphere: Theta is the
// longitude in [-π, π] (0 at +Z, increasing towards +X), Phi the latitude in
// [-π/2, π/2] (positive towards +Y).
type Spherical struct {
	Theta, Phi float64
}

// ToCartesian converts spherical coordinates to a unit vector.
func (s Spherical) ToCartesian() Vec3 {
	st, ct := math.Sincos(s.Theta)
	sp, cp := math.Sincos(s.Phi)
	return Vec3{cp * st, sp, cp * ct}
}

// FromCartesian converts a (not necessarily unit) vector to spherical
// coordinates. The zero vector maps to the origin of the coordinate system.
func FromCartesian(v Vec3) Spherical {
	n := v.Norm()
	if n == 0 {
		return Spherical{}
	}
	phi := math.Asin(v.Y / n)
	theta := math.Atan2(v.X, v.Z)
	return Spherical{Theta: theta, Phi: phi}
}

// LookAt returns the orientation (with zero roll) whose forward vector points
// along v.
func LookAt(v Vec3) Orientation {
	s := FromCartesian(v)
	return Orientation{Yaw: s.Theta, Pitch: s.Phi}
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
