package geom

import (
	"math"
	"testing"
)

// TestWrapAngleExtremes pins the hardened WrapAngle: non-finite input must
// not hang (it used to loop forever on +Inf) and huge finite magnitudes must
// reduce in bounded time instead of iterating |a|/2π times.
func TestWrapAngleExtremes(t *testing.T) {
	for _, a := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		if got := WrapAngle(a); !math.IsNaN(got) {
			t.Errorf("WrapAngle(%v) = %v, want NaN", a, got)
		}
	}
	for _, a := range []float64{1e300, -1e300, 1e9, -1e9, 1e4} {
		got := WrapAngle(a)
		if !(got > -math.Pi && got <= math.Pi) {
			t.Errorf("WrapAngle(%v) = %v, outside (-π, π]", a, got)
		}
	}
	// The common range keeps its exact pre-hardening rounding behaviour.
	for _, a := range []float64{0, 1.5, -1.5, math.Pi, -math.Pi, 3 * math.Pi / 2, -7} {
		want := a
		for want > math.Pi {
			want -= 2 * math.Pi
		}
		for want <= -math.Pi {
			want += 2 * math.Pi
		}
		if got := WrapAngle(a); got != want {
			t.Errorf("WrapAngle(%v) = %v, want %v", a, got, want)
		}
	}
}
