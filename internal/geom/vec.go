// Package geom provides the floating-point geometric primitives used by the
// reference projective-transformation pipeline: 3-vectors, rotation matrices,
// Euler angles, quaternions, and spherical-coordinate conversions.
//
// The conventions follow the paper's rendering model (§2, §6.1):
//
//   - The viewing sphere is the unit sphere centered at the origin.
//   - Head orientation is a rotation applied to the canonical forward axis
//     +Z; yaw is rotation about +Y (positive left), pitch about +X (positive
//     up), roll about +Z.
//   - Spherical coordinates are (theta, phi) with theta ∈ [-π, π] the
//     longitude (azimuth, 0 at +Z, increasing towards +X) and phi ∈
//     [-π/2, π/2] the latitude (elevation, positive towards +Y).
package geom

import "math"

// Vec3 is a 3-component double-precision vector.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation between v and w at parameter t.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}

// Mat3 is a 3×3 row-major matrix.
type Mat3 [3][3]float64

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// Mul returns the matrix product m × n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[i][0]*n[0][j] + m[i][1]*n[1][j] + m[i][2]*n[2][j]
		}
	}
	return r
}

// Apply returns the matrix-vector product m × v.
func (m Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Transpose returns the transpose of m. For rotation matrices this is the
// inverse.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// RotationX returns the rotation matrix about the +X axis by a radians.
func RotationX(a float64) Mat3 {
	s, c := math.Sincos(a)
	return Mat3{
		{1, 0, 0},
		{0, c, -s},
		{0, s, c},
	}
}

// RotationY returns the rotation matrix about the +Y axis by a radians.
func RotationY(a float64) Mat3 {
	s, c := math.Sincos(a)
	return Mat3{
		{c, 0, s},
		{0, 1, 0},
		{-s, 0, c},
	}
}

// RotationZ returns the rotation matrix about the +Z axis by a radians.
func RotationZ(a float64) Mat3 {
	s, c := math.Sincos(a)
	return Mat3{
		{c, -s, 0},
		{s, c, 0},
		{0, 0, 1},
	}
}
