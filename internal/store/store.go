// Package store implements the SAS store (§5.3): a log-structured object
// store for FOV videos and original segments, with frame data and metadata
// kept in separate append-only logs. Separating the metadata log from the
// data log decouples metadata layout from video encoding, as the paper
// argues, and makes both logs independently replayable.
package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
)

// span locates an object inside a log.
type span struct {
	off, len int64
}

// Store is an in-memory log-structured store. It is safe for concurrent
// use. Puts append; the index always points at the latest version of a key
// (older versions stay in the log until compaction, as in any LSM-style
// design).
type Store struct {
	mu      sync.RWMutex
	dataLog []byte
	metaLog []byte
	data    map[string]span
	meta    map[string]span
	puts    int
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string]span), meta: make(map[string]span)}
}

// Put appends an object and its metadata under a key. Re-putting a key
// appends a new version and repoints the index.
func (s *Store) Put(key string, data, meta []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = span{off: int64(len(s.dataLog)), len: int64(len(data))}
	s.dataLog = append(s.dataLog, data...)
	s.meta[key] = span{off: int64(len(s.metaLog)), len: int64(len(meta))}
	s.metaLog = append(s.metaLog, meta...)
	s.puts++
	return nil
}

// Get returns the latest data and metadata for a key.
func (s *Store) Get(key string) (data, meta []byte, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, okD := s.data[key]
	m, okM := s.meta[key]
	if !okD || !okM {
		return nil, nil, false
	}
	data = append([]byte(nil), s.dataLog[d.off:d.off+d.len]...)
	meta = append([]byte(nil), s.metaLog[m.off:m.off+m.len]...)
	return data, meta, true
}

// Has reports whether a key exists.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.data[key]
	return ok
}

// Keys returns all live keys, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DataBytes returns the data log size (including stale versions).
func (s *Store) DataBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.dataLog))
}

// MetaBytes returns the metadata log size.
func (s *Store) MetaBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.metaLog))
}

// LiveBytes returns the bytes reachable from the index.
func (s *Store) LiveBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, sp := range s.data {
		n += sp.len
	}
	return n
}

// Compact rewrites both logs keeping only live versions.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var newData, newMeta []byte
	nd := make(map[string]span, len(keys))
	nm := make(map[string]span, len(keys))
	for _, k := range keys {
		d, m := s.data[k], s.meta[k]
		nd[k] = span{off: int64(len(newData)), len: d.len}
		newData = append(newData, s.dataLog[d.off:d.off+d.len]...)
		nm[k] = span{off: int64(len(newMeta)), len: m.len}
		newMeta = append(newMeta, s.metaLog[m.off:m.off+m.len]...)
	}
	s.dataLog, s.metaLog, s.data, s.meta = newData, newMeta, nd, nm
}

// magic identifies a serialized store snapshot.
var magic = [4]byte{'E', 'V', 'R', 'S'}

// WriteTo serializes the store (compacted view) to w: a record stream of
// (key, data, meta) triples, each length-prefixed.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var written int64
	n, err := w.Write(magic[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeChunk := func(b []byte) error {
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(b)))
		n, err := w.Write(lenBuf[:])
		written += int64(n)
		if err != nil {
			return err
		}
		n, err = w.Write(b)
		written += int64(n)
		return err
	}
	for _, k := range keys {
		d, m := s.data[k], s.meta[k]
		if err := writeChunk([]byte(k)); err != nil {
			return written, err
		}
		if err := writeChunk(s.dataLog[d.off : d.off+d.len]); err != nil {
			return written, err
		}
		if err := writeChunk(s.metaLog[m.off : m.off+m.len]); err != nil {
			return written, err
		}
	}
	return written, nil
}

const (
	// maxSnapshotChunk bounds a single (key, data, or meta) chunk in a
	// snapshot. The largest legitimate objects are encoded video segments,
	// orders of magnitude below this.
	maxSnapshotChunk = 1 << 30 // 1 GiB
	// snapshotReadStep is the incremental allocation granularity while
	// replaying an untrusted length prefix.
	snapshotReadStep = 1 << 20 // 1 MiB
)

// ReadFrom replays a snapshot produced by WriteTo into the store (existing
// keys are overwritten — replay is idempotent).
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	var read int64
	var hdr [4]byte
	n, err := io.ReadFull(r, hdr[:])
	read += int64(n)
	if err != nil {
		return read, fmt.Errorf("store: reading magic: %w", err)
	}
	if hdr != magic {
		return read, fmt.Errorf("store: bad magic %q", hdr)
	}
	readChunk := func() ([]byte, error) {
		var lenBuf [8]byte
		n, err := io.ReadFull(r, lenBuf[:])
		read += int64(n)
		if err != nil {
			return nil, err
		}
		l := binary.LittleEndian.Uint64(lenBuf[:])
		if l > maxSnapshotChunk {
			return nil, fmt.Errorf("store: implausible chunk length %d (cap %d)", l, maxSnapshotChunk)
		}
		// Grow the buffer only as bytes actually arrive: the length prefix
		// is untrusted input, and a tiny truncated snapshot claiming a
		// huge chunk must fail with a read error, not allocate the claim.
		var b []byte
		for uint64(len(b)) < l {
			step := l - uint64(len(b))
			if step > snapshotReadStep {
				step = snapshotReadStep
			}
			start := len(b)
			b = append(b, make([]byte, step)...)
			n, err = io.ReadFull(r, b[start:])
			read += int64(n)
			if err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return nil, err
			}
		}
		return b, nil
	}
	for {
		key, err := readChunk()
		if err == io.EOF {
			return read, nil
		}
		if err != nil {
			return read, fmt.Errorf("store: reading key: %w", err)
		}
		data, err := readChunk()
		if err != nil {
			return read, fmt.Errorf("store: reading data for %q: %w", key, err)
		}
		meta, err := readChunk()
		if err != nil {
			return read, fmt.Errorf("store: reading meta for %q: %w", key, err)
		}
		if err := s.Put(string(key), data, meta); err != nil {
			return read, err
		}
	}
}
