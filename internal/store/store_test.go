package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	if err := s.Put("a/0", []byte("data"), []byte("meta")); err != nil {
		t.Fatal(err)
	}
	d, m, ok := s.Get("a/0")
	if !ok || string(d) != "data" || string(m) != "meta" {
		t.Fatalf("Get = %q %q %v", d, m, ok)
	}
	if _, _, ok := s.Get("missing"); ok {
		t.Error("missing key found")
	}
	if !s.Has("a/0") || s.Has("b") {
		t.Error("Has broken")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	if err := New().Put("", nil, nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	s := New()
	s.Put("k", []byte("v1"), []byte("m1"))
	s.Put("k", []byte("v2"), []byte("m2"))
	d, m, _ := s.Get("k")
	if string(d) != "v2" || string(m) != "m2" {
		t.Errorf("got %q %q, want latest version", d, m)
	}
	// The log is append-only: both versions occupy space until compaction.
	if s.DataBytes() != 4 {
		t.Errorf("data log = %d bytes, want 4 (two versions)", s.DataBytes())
	}
	if s.LiveBytes() != 2 {
		t.Errorf("live = %d bytes, want 2", s.LiveBytes())
	}
	s.Compact()
	if s.DataBytes() != 2 {
		t.Errorf("after compaction data log = %d, want 2", s.DataBytes())
	}
	d, m, _ = s.Get("k")
	if string(d) != "v2" || string(m) != "m2" {
		t.Error("compaction lost data")
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"b", "a", "c"} {
		s.Put(k, []byte(k), nil)
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("keys = %v", keys)
	}
}

func TestGetReturnsCopies(t *testing.T) {
	s := New()
	s.Put("k", []byte("abc"), []byte("xyz"))
	d, _, _ := s.Get("k")
	d[0] = 'Z'
	d2, _, _ := s.Get("k")
	if string(d2) != "abc" {
		t.Error("Get returned aliased storage")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(60))
	for i := 0; i < 20; i++ {
		data := make([]byte, rng.Intn(100))
		meta := make([]byte, rng.Intn(30))
		rng.Read(data)
		rng.Read(meta)
		s.Put(fmt.Sprintf("video/%d/fov/%d", i%3, i), data, meta)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(restored.Keys()) != len(s.Keys()) {
		t.Fatalf("restored %d keys, want %d", len(restored.Keys()), len(s.Keys()))
	}
	for _, k := range s.Keys() {
		d1, m1, _ := s.Get(k)
		d2, m2, _ := restored.Get(k)
		if !bytes.Equal(d1, d2) || !bytes.Equal(m1, m2) {
			t.Fatalf("key %q differs after restore", k)
		}
	}
}

func TestReplayIdempotent(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"), []byte("x"))
	s.Put("b", []byte("2"), []byte("y"))
	var buf bytes.Buffer
	s.WriteTo(&buf)
	snapshot := buf.Bytes()
	target := New()
	for i := 0; i < 3; i++ { // replaying the same log thrice changes nothing
		if _, err := target.ReadFrom(bytes.NewReader(snapshot)); err != nil {
			t.Fatal(err)
		}
	}
	if len(target.Keys()) != 2 {
		t.Fatalf("replayed store has %d keys", len(target.Keys()))
	}
	d, _, _ := target.Get("a")
	if string(d) != "1" {
		t.Error("replay corrupted value")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := New().ReadFrom(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	s := New()
	s.Put("k", []byte("data"), []byte("m"))
	s.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := New().ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d/%d", g, i%10)
				s.Put(key, []byte{byte(i)}, []byte{byte(g)})
				s.Get(key)
				s.Keys()
			}
		}(g)
	}
	wg.Wait()
	if len(s.Keys()) != 80 {
		t.Errorf("expected 80 keys, got %d", len(s.Keys()))
	}
}

func TestSnapshotPropertyRoundTrip(t *testing.T) {
	prop := func(keys []string, payload []byte) bool {
		s := New()
		for i, k := range keys {
			if k == "" {
				continue
			}
			s.Put(k, payload, []byte{byte(i)})
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		r := New()
		if _, err := r.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			return false
		}
		if len(r.Keys()) != len(s.Keys()) {
			return false
		}
		for _, k := range s.Keys() {
			d1, _, _ := s.Get(k)
			d2, _, _ := r.Get(k)
			if !bytes.Equal(d1, d2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Error(err)
	}
}

func TestCompactIdempotent(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i%3), []byte{byte(i)}, []byte{byte(i * 2)})
	}
	s.Compact()
	first := s.DataBytes()
	s.Compact()
	if s.DataBytes() != first {
		t.Errorf("second compaction changed size: %d vs %d", s.DataBytes(), first)
	}
	if s.LiveBytes() != first {
		t.Errorf("compacted log has dead bytes: live %d vs log %d", s.LiveBytes(), first)
	}
	d, _, _ := s.Get("k2")
	if len(d) != 1 || d[0] != 8 {
		t.Errorf("latest version lost: %v", d)
	}
}

func TestMetaBytesTracked(t *testing.T) {
	s := New()
	s.Put("a", []byte("xx"), []byte("metadata"))
	if s.MetaBytes() != 8 {
		t.Errorf("meta bytes = %d", s.MetaBytes())
	}
}

// TestReadFromMaliciousLengthPrefix feeds snapshots whose length prefixes
// claim far more data than the input carries. Replay must fail fast with a
// bounded allocation — the regression here was a 12-byte snapshot forcing
// a multi-GiB make([]byte, l) before any data was read.
func TestReadFromMaliciousLengthPrefix(t *testing.T) {
	snapshot := func(claim uint64, payload []byte) []byte {
		var buf bytes.Buffer
		buf.Write(magic[:])
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], claim)
		buf.Write(lenBuf[:])
		buf.Write(payload)
		return buf.Bytes()
	}

	// Claim over the hard cap: rejected outright.
	if _, err := New().ReadFrom(bytes.NewReader(snapshot(1<<40, nil))); err == nil {
		t.Error("chunk length above cap accepted")
	}

	// Claim under the cap but with (almost) no payload behind it: must
	// error on truncation without allocating the 512 MiB claim. The
	// allocation bound is snapshotReadStep plus append's growth slack.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := New().ReadFrom(bytes.NewReader(snapshot(512<<20, []byte("tiny"))))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated oversized claim accepted")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Errorf("replaying a truncated 512 MiB claim allocated %d bytes", grew)
	}

	// A legitimate snapshot still replays after the hardening.
	src := New()
	if err := src.Put("k", bytes.Repeat([]byte{7}, 3*int(snapshotReadStep)/2), []byte("m")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatalf("round trip after hardening: %v", err)
	}
	d, _, ok := dst.Get("k")
	if !ok || len(d) != 3*int(snapshotReadStep)/2 {
		t.Fatalf("replayed data wrong: ok=%v len=%d", ok, len(d))
	}
}
