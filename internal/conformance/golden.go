package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"evr/internal/projection"
	"evr/internal/pt"
)

// Budget is the declared acceptance envelope for one case's pte-vs-pt
// divergence. Budgets are owned by code (budgetFor), not by the manifest:
// the manifest copies them out for documentation, but verification always
// checks against the in-code values, so editing the JSON cannot loosen the
// gate.
type Budget struct {
	MaxMAE      float64 `json:"maxMAE"`      // normalized mean abs error ceiling
	MinPSNR     float64 `json:"minPSNR"`     // dB floor
	MinSPSNR    float64 `json:"minSPSNR"`    // solid-angle-weighted viewport PSNR floor, dB
	MinSSIM     float64 `json:"minSSIM"`     // structural similarity floor
	MaxDiffFrac float64 `json:"maxDiffFrac"` // ceiling on fraction of differing pixels
	MaxAbsErr   int     `json:"maxAbsErr"`   // worst single-channel error ceiling
}

// budgetFor returns the error budget of a case's (filter, label) class.
//
// The numbers encode the measured divergence classes of the [28, 10]
// datapath on the stress corpus, with ~1.5–2× headroom (see EXPERIMENTS.md
// for the measured table):
//
//   - Bilinear filtering bounds the error of a mis-quantized coordinate by
//     the local gradient, so its budgets are tight everywhere.
//   - Nearest filtering turns a half-ulp coordinate difference at a rounding
//     boundary into a whole-pixel flip; across a stress-cap rim that is a
//     full-contrast error, so MaxAbsErr is necessarily ~255 and the budget
//     instead constrains how many pixels may flip (MaxDiffFrac) and the
//     aggregate error mass (MaxMAE, MinPSNR).
//   - The boundary labels (pole, seam, edge) formally document the expected
//     clamp/wrap divergences: CORDIC angle error is amplified near the
//     poles' v-clamp and the seam's θ-wrap, and the fixed-point face
//     selector can pick the neighboring cube face at an edge tie. All stay
//     visually lossless (MAE well under the paper's 1e-3 threshold scaled
//     to our high-contrast synthetic content).
func budgetFor(c Case) Budget {
	if c.Filter == pt.Bilinear {
		// Measured worst cases: MAE 1.7e-4, PSNR 54.2 dB, maxAbs 3 away
		// from boundaries; maxAbs 37 / PSNR 53.0 dB at boundary poses where
		// CORDIC angle error crosses a stress-cap rim.
		b := Budget{MaxMAE: 0.0005, MinPSNR: 48, MinSPSNR: 48, MinSSIM: 0.995, MaxDiffFrac: 0.15, MaxAbsErr: 64}
		switch c.Label {
		case "pole", "seam", "edge":
			b.MaxMAE = 0.0006
			b.MinPSNR = 45
			b.MinSPSNR = 45
		}
		return b
	}
	// Nearest. Measured worst cases: MAE 4.3e-4 / PSNR 36.8 dB away from
	// boundaries; MAE 8.8e-4 / PSNR 34.7 dB / SSIM 0.991 at the ERP north
	// pole, the single worst divergence of the [28, 10] datapath (still
	// inside the paper's 1e-3 visually-lossless MAE threshold).
	b := Budget{MaxMAE: 0.001, MinPSNR: 33, MinSPSNR: 33, MinSSIM: 0.985, MaxDiffFrac: 0.03, MaxAbsErr: 255}
	switch c.Label {
	case "pole", "seam", "edge":
		b.MaxMAE = 0.0015
		b.MinPSNR = 31
		b.MinSPSNR = 31
		b.MaxDiffFrac = 0.04
	}
	return b
}

// Entry is one case's golden record: identity, fingerprints, measured
// divergence, and the documented budget.
type Entry struct {
	Name        string     `json:"name"`
	Projection  string     `json:"projection"`
	Filter      string     `json:"filter"`
	Label       string     `json:"label"`
	Pose        [3]float64 `json:"pose"` // yaw, pitch, roll in radians
	Fast        bool       `json:"fast,omitempty"`
	Workers     int        `json:"workers"`
	Checksum    string     `json:"checksum"`    // FNV-1a of the pt reference frame, hex
	PTEChecksum string     `json:"pteChecksum"` // FNV-1a of the pte frame, hex
	MaxAbsErr   int        `json:"maxAbsErr"`
	MAE         float64    `json:"mae"`
	PSNR        float64    `json:"psnr"`
	SPSNR       float64    `json:"spsnr"`
	SSIM        float64    `json:"ssim"`
	DiffFrac    float64    `json:"diffFrac"`
	Budget      Budget     `json:"budget"`
}

// InputInfo fingerprints one generated input panorama, pinning the corpus
// generator itself: a change to the synthetic scene invalidates every case.
type InputInfo struct {
	W        int    `json:"w"`
	H        int    `json:"h"`
	Checksum string `json:"checksum"`
}

// Manifest is the golden-vector file: committed to the repo, verified by
// `evrconform` and the CI gate, regenerated with `evrconform -update`.
type Manifest struct {
	Version  int                  `json:"version"`
	Viewport string               `json:"viewport"`
	Inputs   map[string]InputInfo `json:"inputs"`
	Cases    []Entry              `json:"cases"`
}

// entryFor converts an executed case into its golden record.
func entryFor(r Result) Entry {
	return Entry{
		Name:        r.Case.Name,
		Projection:  r.Case.Projection.String(),
		Filter:      r.Case.Filter.String(),
		Label:       r.Case.Label,
		Pose:        [3]float64{r.Case.Pose.Yaw, r.Case.Pose.Pitch, r.Case.Pose.Roll},
		Fast:        r.Case.Fast,
		Workers:     r.Case.Workers,
		Checksum:    hex64(r.Metrics.Checksum),
		PTEChecksum: hex64(r.Metrics.PTEChecksum),
		MaxAbsErr:   r.Metrics.MaxAbsErr,
		MAE:         r.Metrics.MAE,
		PSNR:        r.Metrics.PSNR,
		SPSNR:       r.Metrics.SPSNR,
		SSIM:        r.Metrics.SSIM,
		DiffFrac:    r.Metrics.DiffFrac,
		Budget:      budgetFor(r.Case),
	}
}

func hex64(v uint64) string { return fmt.Sprintf("%016x", v) }

// Generate executes every case and assembles a fresh manifest. The first
// byte-identity violation aborts generation — a corpus that cannot even
// agree with itself must never become a golden.
func Generate(cases []Case) (*Manifest, error) {
	m := &Manifest{
		Version:  1,
		Viewport: fmt.Sprintf("%dx%d fov %dx%d deg", vpSize, vpSize, 90, 90),
		Inputs:   map[string]InputInfo{},
	}
	for _, pm := range projection.Methods {
		f := InputFrame(pm)
		m.Inputs[pm.String()] = InputInfo{W: f.W, H: f.H, Checksum: hex64(Checksum(f))}
	}
	for _, c := range cases {
		r, err := RunCase(c)
		if err != nil {
			return nil, err
		}
		m.Cases = append(m.Cases, entryFor(r))
	}
	return m, nil
}

// Encode marshals the manifest to its canonical on-disk form.
func (m *Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Save writes the manifest to path in canonical form.
func (m *Manifest) Save(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a manifest from path.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("conformance: parsing %s: %w", path, err)
	}
	return &m, nil
}

// Compare verifies freshly generated entries against the stored golden
// manifest and the in-code budgets, returning one human-readable violation
// per divergence. fresh may cover a subset of stored (the fast gate); any
// fresh case missing from stored is a violation.
func Compare(stored, fresh *Manifest) []string {
	var v []string
	idx := make(map[string]Entry, len(stored.Cases))
	for _, e := range stored.Cases {
		idx[e.Name] = e
	}
	for name, in := range fresh.Inputs {
		if got, ok := stored.Inputs[name]; !ok {
			v = append(v, fmt.Sprintf("input %s: missing from golden manifest", name))
		} else if got != in {
			v = append(v, fmt.Sprintf("input %s: golden %+v, regenerated %+v", name, got, in))
		}
	}
	for _, e := range fresh.Cases {
		g, ok := idx[e.Name]
		if !ok {
			v = append(v, fmt.Sprintf("%s: missing from golden manifest (run evrconform -update)", e.Name))
			continue
		}
		if g.Checksum != e.Checksum {
			v = append(v, fmt.Sprintf("%s: pt reference checksum %s, golden %s", e.Name, e.Checksum, g.Checksum))
		}
		if g.PTEChecksum != e.PTEChecksum {
			v = append(v, fmt.Sprintf("%s: pte checksum %s, golden %s", e.Name, e.PTEChecksum, g.PTEChecksum))
		}
		if g.MaxAbsErr != e.MaxAbsErr || g.MAE != e.MAE || g.PSNR != e.PSNR ||
			g.SPSNR != e.SPSNR || g.SSIM != e.SSIM || g.DiffFrac != e.DiffFrac {
			v = append(v, fmt.Sprintf("%s: metrics drifted: got {maxAbs %d mae %g psnr %g spsnr %g ssim %g diff %g}, golden {maxAbs %d mae %g psnr %g spsnr %g ssim %g diff %g}",
				e.Name, e.MaxAbsErr, e.MAE, e.PSNR, e.SPSNR, e.SSIM, e.DiffFrac,
				g.MaxAbsErr, g.MAE, g.PSNR, g.SPSNR, g.SSIM, g.DiffFrac))
		}
		v = append(v, budgetViolations(e)...)
	}
	return v
}

// BudgetViolations checks every entry of a manifest against the in-code
// budgets (without re-rendering anything).
func (m *Manifest) BudgetViolations() []string {
	var v []string
	for _, e := range m.Cases {
		v = append(v, budgetViolations(e)...)
	}
	return v
}

// budgetViolations checks one entry against its in-code budget class.
func budgetViolations(e Entry) []string {
	return budgetForEntry(e).Violations(e.Name, Metrics{
		MaxAbsErr: e.MaxAbsErr,
		MAE:       e.MAE,
		PSNR:      e.PSNR,
		SPSNR:     e.SPSNR,
		SSIM:      e.SSIM,
		DiffFrac:  e.DiffFrac,
	})
}

// BudgetFor returns the in-code error budget of a (filter, label) class —
// the envelope other approximate render paths hold themselves to on the
// same corpus.
func BudgetFor(filter pt.Filter, label string) Budget {
	return budgetFor(Case{Filter: filter, Label: label})
}

// LUTQuantBudgetFor returns the error budget for the pose-quantized mapping
// LUT (ptlut at DefaultQuantStep with Q8 fixed-point weights) on the stress
// corpus. Its error model differs from the fixed-point datapath's: pose
// snapping (≤ 0.125° per axis) shifts the whole frame by a sub-pixel
// amount, so on this corpus's high-contrast synthetic content many pixels
// move slightly (large DiffFrac, and nearest flips whole texels across
// stress-cap rims) while the error mass stays small. Budgets carry ~1.5×
// headroom over the measured worst cases per class (see the table in
// EXPERIMENTS.md); a pose already on the grid (the identity label) must be
// nearly exact — only the Q8 weight rounding remains.
func LUTQuantBudgetFor(filter pt.Filter, label string) Budget {
	if filter == pt.Bilinear {
		if label == "identity" {
			// Grid pose: pose error zero, Q8 weights alone. Measured
			// maxAbs 1, MAE 3.2e-5.
			return Budget{MaxMAE: 0.0001, MinPSNR: 60, MinSPSNR: 60, MinSSIM: 0.9999, MaxDiffFrac: 0.05, MaxAbsErr: 2}
		}
		// Measured worst: MAE 2.6e-3, PSNR 39.9 dB, SSIM 0.9956, 37% of
		// pixels nudged, maxAbs 77 across a stress-cap rim.
		return Budget{MaxMAE: 0.004, MinPSNR: 37, MinSPSNR: 37, MinSSIM: 0.99, MaxDiffFrac: 0.55, MaxAbsErr: 120}
	}
	if label == "identity" {
		// Grid pose, no weights: the table is the exact table, bit for bit.
		return Budget{MaxMAE: 0, MinPSNR: 99, MinSPSNR: 99, MinSSIM: 1, MaxDiffFrac: 0, MaxAbsErr: 0}
	}
	// Measured worst: MAE 3.0e-3, PSNR 28.9 dB, SSIM 0.980, 10.5% of pixels
	// flipped to a neighboring texel; across a rim that is full contrast.
	return Budget{MaxMAE: 0.0045, MinPSNR: 27, MinSPSNR: 27, MinSSIM: 0.97, MaxDiffFrac: 0.16, MaxAbsErr: 255}
}

// Violations checks measured divergence metrics against the budget,
// returning one human-readable violation per exceeded bound. name prefixes
// each message.
func (b Budget) Violations(name string, m Metrics) []string {
	var v []string
	if m.MAE > b.MaxMAE {
		v = append(v, fmt.Sprintf("%s: MAE %g exceeds budget %g", name, m.MAE, b.MaxMAE))
	}
	if m.PSNR < b.MinPSNR {
		v = append(v, fmt.Sprintf("%s: PSNR %g dB below floor %g dB", name, m.PSNR, b.MinPSNR))
	}
	if m.SPSNR < b.MinSPSNR {
		v = append(v, fmt.Sprintf("%s: S-PSNR %g dB below floor %g dB", name, m.SPSNR, b.MinSPSNR))
	}
	if m.SSIM < b.MinSSIM {
		v = append(v, fmt.Sprintf("%s: SSIM %g below floor %g", name, m.SSIM, b.MinSSIM))
	}
	if m.DiffFrac > b.MaxDiffFrac {
		v = append(v, fmt.Sprintf("%s: %.2f%% of pixels differ, budget %.2f%%", name, 100*m.DiffFrac, 100*b.MaxDiffFrac))
	}
	if m.MaxAbsErr > b.MaxAbsErr {
		v = append(v, fmt.Sprintf("%s: max abs error %d exceeds budget %d", name, m.MaxAbsErr, b.MaxAbsErr))
	}
	return v
}

// budgetForEntry reconstructs the budget class from a stored entry.
func budgetForEntry(e Entry) Budget {
	filter := pt.Nearest
	if e.Filter == pt.Bilinear.String() {
		filter = pt.Bilinear
	}
	return budgetFor(Case{Filter: filter, Label: e.Label})
}

// FormatTable renders the manifest's worst-case divergences as an aligned
// text table, one row per projection × filter with the worst MAE case.
func (m *Manifest) FormatTable() string {
	type key struct{ proj, filter string }
	worst := map[key]Entry{}
	var order []key
	for _, e := range m.Cases {
		k := key{e.Projection, e.Filter}
		w, ok := worst[k]
		if !ok {
			order = append(order, k)
		}
		if !ok || e.MAE > w.MAE {
			worst[k] = e
		}
	}
	out := fmt.Sprintf("%-12s %-9s %-28s %8s %10s %9s %10s %8s %9s\n",
		"projection", "filter", "worst case", "maxAbs", "MAE", "PSNR dB", "S-PSNR dB", "SSIM", "diff px")
	for _, k := range order {
		e := worst[k]
		out += fmt.Sprintf("%-12s %-9s %-28s %8d %10s %9.2f %10.2f %8.4f %8.2f%%\n",
			k.proj, k.filter, e.Name, e.MaxAbsErr,
			strconv.FormatFloat(e.MAE, 'g', 4, 64), e.PSNR, e.SPSNR, e.SSIM, 100*e.DiffFrac)
	}
	return out
}
