package conformance

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"

	"evr/internal/gpusim"
	"evr/internal/projection"
)

const goldenPath = "testdata/golden.json"

var (
	fastOnce sync.Once
	fastMan  *Manifest
	fastErr  error
)

// fastManifest generates the fast-subset manifest once and shares it across
// tests: every case render also exercises the byte-identity invariants, so
// there is no value in repeating the work per test.
func fastManifest(t *testing.T) *Manifest {
	t.Helper()
	fastOnce.Do(func() { fastMan, fastErr = Generate(FastCorpus()) })
	if fastErr != nil {
		t.Fatalf("generating fast corpus: %v", fastErr)
	}
	return fastMan
}

func TestCorpusShape(t *testing.T) {
	cases := Corpus()
	want := len(projection.Methods) * 2 * len(corpusPoses())
	if len(cases) != want {
		t.Fatalf("Corpus has %d cases, want %d", len(cases), want)
	}
	names := map[string]bool{}
	labels := map[string]int{}
	for _, c := range cases {
		if names[c.Name] {
			t.Fatalf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		labels[c.Label]++
		if c.Workers < 2 {
			t.Fatalf("%s: workers %d, want >= 2 so parallel identity is a real check", c.Name, c.Workers)
		}
		if err := c.PTConfig().Validate(); err != nil {
			t.Fatalf("%s: invalid config: %v", c.Name, err)
		}
	}
	for _, l := range []string{"identity", "pole", "seam", "edge", "rolled", "random"} {
		if labels[l] == 0 {
			t.Fatalf("no cases with label %q", l)
		}
	}
	fast := FastCorpus()
	if len(fast) == 0 || len(fast) >= len(cases) {
		t.Fatalf("FastCorpus has %d cases (full %d); want a strict nonempty subset", len(fast), len(cases))
	}
	for _, c := range fast {
		if !c.Fast {
			t.Fatalf("FastCorpus includes non-fast case %s", c.Name)
		}
	}
}

// TestGoldenManifestFastSubset is the in-process version of the CI gate:
// the committed golden manifest must agree with a fresh render of the fast
// subset, checksum for checksum and metric for metric, within the in-code
// budgets.
func TestGoldenManifestFastSubset(t *testing.T) {
	stored, err := Load(goldenPath)
	if err != nil {
		t.Fatalf("loading %s: %v (run `go run ./cmd/evrconform -update`)", goldenPath, err)
	}
	if len(stored.Cases) != len(Corpus()) {
		t.Fatalf("golden manifest has %d cases, corpus has %d (run `go run ./cmd/evrconform -update`)",
			len(stored.Cases), len(Corpus()))
	}
	fresh := fastManifest(t)
	if v := Compare(stored, fresh); len(v) > 0 {
		t.Fatalf("fast subset diverges from golden manifest:\n  %s", strings.Join(v, "\n  "))
	}
}

// tamperedCopy returns a deep-enough copy of m that Cases and Inputs can be
// mutated without aliasing the original.
func tamperedCopy(m *Manifest) *Manifest {
	c := *m
	c.Cases = append([]Entry(nil), m.Cases...)
	c.Inputs = make(map[string]InputInfo, len(m.Inputs))
	for k, v := range m.Inputs {
		c.Inputs[k] = v
	}
	return &c
}

// flipBit flips the lowest bit of a hex-encoded checksum — the smallest
// possible corruption of a golden vector.
func flipBit(t *testing.T, hexsum string) string {
	t.Helper()
	v, err := strconv.ParseUint(hexsum, 16, 64)
	if err != nil {
		t.Fatalf("parsing checksum %q: %v", hexsum, err)
	}
	return hex64(v ^ 1)
}

// TestTamperedGoldenFailsGate is the acceptance-criteria check: a one-bit
// perturbation of a stored golden checksum must make the conformance gate
// fail. A clean pass against the tampered manifest would mean the gate never
// actually compares the vectors.
func TestTamperedGoldenFailsGate(t *testing.T) {
	stored, err := Load(goldenPath)
	if err != nil {
		t.Fatalf("loading %s: %v", goldenPath, err)
	}
	fresh := fastManifest(t)
	if v := Compare(stored, fresh); len(v) > 0 {
		t.Fatalf("pristine manifest must pass before tampering: %v", v)
	}
	victim := fresh.Cases[0].Name

	tamper := []struct {
		what  string
		mutct func(*Entry)
	}{
		{"pt checksum", func(e *Entry) { e.Checksum = flipBit(t, e.Checksum) }},
		{"pte checksum", func(e *Entry) { e.PTEChecksum = flipBit(t, e.PTEChecksum) }},
		{"MAE metric", func(e *Entry) { e.MAE += 1e-6 }},
		{"max abs error", func(e *Entry) { e.MaxAbsErr++ }},
	}
	for _, tc := range tamper {
		t.Run(tc.what, func(t *testing.T) {
			bad := tamperedCopy(stored)
			found := false
			for i := range bad.Cases {
				if bad.Cases[i].Name == victim {
					tc.mutct(&bad.Cases[i])
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("fast case %s not present in golden manifest", victim)
			}
			v := Compare(bad, fresh)
			if len(v) == 0 {
				t.Fatalf("gate passed against a manifest with a tampered %s for %s", tc.what, victim)
			}
			if !strings.Contains(strings.Join(v, "\n"), victim) {
				t.Fatalf("violations do not name the tampered case %s: %v", victim, v)
			}
		})
	}

	t.Run("input fingerprint", func(t *testing.T) {
		bad := tamperedCopy(stored)
		in := bad.Inputs[projection.ERP.String()]
		in.Checksum = flipBit(t, in.Checksum)
		bad.Inputs[projection.ERP.String()] = in
		if v := Compare(bad, fresh); len(v) == 0 {
			t.Fatal("gate passed against a manifest with a tampered input fingerprint")
		}
	})

	t.Run("missing case", func(t *testing.T) {
		bad := tamperedCopy(stored)
		kept := bad.Cases[:0]
		for _, e := range bad.Cases {
			if e.Name != victim {
				kept = append(kept, e)
			}
		}
		bad.Cases = kept
		if v := Compare(bad, fresh); len(v) == 0 {
			t.Fatalf("gate passed against a manifest missing case %s", victim)
		}
	})
}

// TestBudgetViolationsDetected pins that budgets are enforced from code, not
// from the (attacker-editable) manifest copy: inflating an entry's measured
// divergence past its class budget must trip BudgetViolations even though
// the entry's own Budget field still holds the loose original values.
func TestBudgetViolationsDetected(t *testing.T) {
	fresh := fastManifest(t)
	if v := fresh.BudgetViolations(); len(v) > 0 {
		t.Fatalf("fresh manifest violates budgets: %v", v)
	}
	bad := tamperedCopy(fresh)
	e := &bad.Cases[0]
	e.MAE = 0.5
	e.PSNR = 3
	e.SSIM = 0.1
	e.DiffFrac = 1
	e.MaxAbsErr = 255
	e.Budget = Budget{MaxMAE: 1, MinPSNR: 0, MinSSIM: 0, MaxDiffFrac: 1, MaxAbsErr: 255} // loosened copy must be ignored
	v := bad.BudgetViolations()
	if len(v) < 4 {
		t.Fatalf("expected >= 4 budget violations for a saturated entry, got %d: %v", len(v), v)
	}
}

// TestChecksumSensitivity pins the golden fingerprint itself: any one-byte
// pixel change and any dimension change must alter the FNV-1a checksum.
func TestChecksumSensitivity(t *testing.T) {
	f := InputFrame(projection.ERP)
	base := Checksum(f)
	cp := f.Clone()
	cp.Pix[len(cp.Pix)/2] ^= 1
	if Checksum(cp) == base {
		t.Fatal("one-bit pixel perturbation did not change the checksum")
	}
	cp.Pix[len(cp.Pix)/2] ^= 1
	if Checksum(cp) != base {
		t.Fatal("checksum is not a pure function of dims+pixels")
	}
	// Same byte stream, transposed dims: the fingerprint must include shape.
	a := InputFrame(projection.CMP)
	b := a.Clone()
	b.W, b.H = a.H, a.W
	if Checksum(a) == Checksum(b) {
		t.Fatal("checksum ignores frame dimensions")
	}
}

// TestGenerateDeterminism pins that the whole pipeline — scene synthesis,
// three render paths, metrics, JSON encoding — is bit-reproducible: the
// regenerate-and-diff CI gate is only sound if two runs encode identically.
func TestGenerateDeterminism(t *testing.T) {
	a := fastManifest(t)
	b, err := Generate(FastCorpus())
	if err != nil {
		t.Fatalf("second generation: %v", err)
	}
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("two generations of the fast corpus encode differently")
	}
}

// TestGpusimCacheGeometryInvariance pins that the GPU model's cache
// parameters are a performance model only: pixel output must stay
// byte-identical to the pt reference under any cache geometry.
func TestGpusimCacheGeometryInvariance(t *testing.T) {
	c := FastCorpus()[0]
	ref, err := RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	full := InputFrame(c.Projection)
	for _, mod := range []func(*gpusim.Config){
		func(g *gpusim.Config) { g.CacheBytes = 1 << 10; g.CacheWays = 1 },
		func(g *gpusim.Config) { g.TileW, g.TileH = 8, 2; g.CacheLineB = 48 },
		func(g *gpusim.Config) { g.CacheBytes = 256 << 10; g.CacheWays = 16 },
	} {
		gcfg := gpusim.DefaultConfig(c.PTConfig())
		mod(&gcfg)
		gpu, err := gpusim.New(gcfg)
		if err != nil {
			t.Fatalf("gpusim config variant: %v", err)
		}
		out := gpu.Render(full, c.Pose)
		if Checksum(out) != ref.Metrics.Checksum {
			t.Fatalf("cache geometry %+v changed rendered pixels", gcfg)
		}
	}
}
