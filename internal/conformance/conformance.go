// Package conformance is the differential- and metamorphic-testing oracle
// that pins the repo's three render implementations against each other:
//
//   - internal/pt      — the double-precision float reference,
//   - internal/pte     — the fixed-point [28, 10] accelerator datapath,
//   - internal/gpusim  — the GPU texture-mapping baseline.
//
// The paper's HAR claim (§6, Fig. 11/13) is that the PTE's fixed-point
// output is visually lossless versus the GPU float path. This package makes
// that claim a machine-checked invariant: a deterministic corpus of
// (projection × filter × pose) cases — including the poles, the ERP
// longitude seam, and cube face edges/corners where clamp/wrap behaviour
// diverges first — is swept through all three implementations, asserting
//
//   - byte identity where it must hold (pt serial vs RenderParallel, gpusim
//     vs pt, pte.Render vs pte.RenderParallel), and
//   - per-case error budgets (max abs error, MAE, PSNR, SSIM, fraction of
//     differing pixels) for pte vs pt, where fixed-point quantization makes
//     bit-equality impossible by design.
//
// Results are checked into a golden manifest (testdata/golden.json,
// regenerated with `evrconform -update`) so every future change to a render
// path, the fixed-point library, or the projection math is gated against
// silent divergence. Metamorphic properties (identity-pose passthrough,
// yaw-equivariance, seam continuity, projection round trips) provide
// oracle-free cross-checks on the reference itself.
package conformance

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/gpusim"
	"evr/internal/projection"
	"evr/internal/pt"
	"evr/internal/pte"
	"evr/internal/ptlut"
	"evr/internal/quality"
)

// Viewport geometry shared by every corpus case: a 64×64 FOV frame with the
// paper's 90°×90° field of view — small enough that the full corpus runs in
// seconds, large enough that pole/seam/edge neighborhoods span many pixels.
const (
	vpSize = 64
	fovRad = math.Pi / 2
)

// Input panorama dimensions per projection: 2:1 for ERP, 3:2 (80×80 faces)
// for the cubemap layouts.
const (
	erpW, erpH   = 256, 128
	cubeW, cubeH = 240, 160
)

// Case is one conformance corpus entry: a (projection, filter, pose) triple
// plus the worker count used for the parallel byte-identity checks.
type Case struct {
	Name       string
	Projection projection.Method
	Filter     pt.Filter
	Pose       geom.Orientation
	// Label classifies the pose: "identity", "pole", "seam", "edge",
	// "rolled", or "random". Error budgets are assigned per (filter, label)
	// class.
	Label string
	// Fast marks the subset run by the quick CI gate and unit tests.
	Fast bool
	// Workers is the worker count for the pt/pte parallel identity checks.
	Workers int
}

// PTConfig returns the float-reference render configuration of the case.
func (c Case) PTConfig() pt.Config {
	return pt.Config{
		Projection: c.Projection,
		Filter:     c.Filter,
		Viewport: projection.Viewport{
			Width: vpSize, Height: vpSize,
			FOVX: fovRad, FOVY: fovRad,
		},
	}
}

// poseSpec is one corpus pose before expansion over projections × filters.
type poseSpec struct {
	label string
	name  string
	o     geom.Orientation
	fast  bool
}

// corpusPoses returns the deterministic pose grid: the degenerate and
// boundary poses the issue calls out, plus seeded pseudo-random poses.
func corpusPoses() []poseSpec {
	specs := []poseSpec{
		{"identity", "identity", geom.Orientation{}, true},
		{"pole", "pole-up", geom.Orientation{Pitch: math.Pi / 2}, true},
		{"pole", "pole-down", geom.Orientation{Pitch: -math.Pi / 2}, false},
		{"pole", "pole-up-yawed", geom.Orientation{Yaw: 1.1, Pitch: math.Pi/2 - 0.05}, false},
		{"seam", "seam-center", geom.Orientation{Yaw: math.Pi}, true},
		{"seam", "seam-offset", geom.Orientation{Yaw: -math.Pi + 0.01, Pitch: 0.3}, false},
		{"edge", "edge-front-right", geom.Orientation{Yaw: math.Pi / 4}, true},
		{"edge", "edge-back-left", geom.Orientation{Yaw: 3 * math.Pi / 4}, false},
		{"edge", "corner-111", geom.Orientation{Yaw: math.Pi / 4, Pitch: math.Asin(1 / math.Sqrt(3))}, false},
		{"rolled", "rolled", geom.Orientation{Yaw: 0.5, Pitch: -0.2, Roll: 0.4}, false},
	}
	// Seeded random poses (SplitMix64): reproducible across runs and
	// platforms, no dependence on math/rand's generator internals.
	state := uint64(0xEE2019C0FFEE)
	for i := 0; i < 5; i++ {
		o := geom.Orientation{
			Yaw:   (rand01(&state)*2 - 1) * math.Pi,
			Pitch: (rand01(&state) - 0.5) * math.Pi * 0.98,
			Roll:  (rand01(&state)*2 - 1) * 0.5,
		}
		specs = append(specs, poseSpec{"random", fmt.Sprintf("random-%d", i), o, i == 0})
	}
	return specs
}

// splitmix64 advances the state and returns the next pseudo-random word.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rand01 returns a uniform float64 in [0, 1).
func rand01(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / (1 << 53)
}

// Corpus returns the full deterministic case list: every pose × every
// projection × both filters.
func Corpus() []Case {
	var cases []Case
	i := 0
	for _, m := range projection.Methods {
		for _, f := range []pt.Filter{pt.Nearest, pt.Bilinear} {
			for _, p := range corpusPoses() {
				cases = append(cases, Case{
					Name:       fmt.Sprintf("%s/%s/%s", m, f, p.name),
					Projection: m,
					Filter:     f,
					Pose:       p.o,
					Label:      p.label,
					Fast:       p.fast,
					Workers:    2 + i%3,
				})
				i++
			}
		}
	}
	return cases
}

// FastCorpus returns the quick-gate subset of Corpus: one pose per label
// class, still covering all projections and filters.
func FastCorpus() []Case {
	var fast []Case
	for _, c := range Corpus() {
		if c.Fast {
			fast = append(fast, c)
		}
	}
	return fast
}

// stressCap is a high-contrast disk painted onto the test sphere. The caps
// sit exactly on the regions the corpus stresses — the poles, the ERP seam,
// a cube corner, and a cube face edge — so a sampling error there moves
// pixels with visible contrast instead of disappearing into a flat gradient.
type stressCap struct {
	dir    geom.Vec3
	radius float64
	color  [3]byte
}

var stressCaps = []stressCap{
	{geom.Vec3{Y: 1}, 0.50, [3]byte{240, 80, 60}},                          // north pole
	{geom.Vec3{Y: -1}, 0.40, [3]byte{200, 70, 220}},                        // south pole
	{geom.Vec3{Z: -1}, 0.45, [3]byte{70, 220, 90}},                         // ERP seam center (θ = π)
	{geom.Vec3{X: 1, Y: 1, Z: 1}.Normalize(), 0.35, [3]byte{70, 110, 235}}, // cube corner
	{geom.Vec3{X: 1, Z: 1}.Normalize(), 0.30, [3]byte{235, 210, 70}},       // +Z/+X face edge
}

// paint returns the deterministic scene color along a view direction:
// stress caps (bright fill with a dark rim) over a smooth low-frequency
// gradient. Content is defined on the sphere, so it is continuous across
// the ERP seam and cube face boundaries — exactly the property the seam and
// edge budgets rely on.
func paint(dir geom.Vec3) (r, g, b byte) {
	for _, c := range stressCaps {
		d := dir.Dot(c.dir)
		if d > 1 {
			d = 1
		}
		if ang := math.Acos(d); ang < c.radius {
			if ang > 0.82*c.radius {
				return c.color[0] / 4, c.color[1] / 4, c.color[2] / 4
			}
			return c.color[0], c.color[1], c.color[2]
		}
	}
	s := geom.FromCartesian(dir)
	base := 120 + 70*math.Sin(3*s.Theta)*math.Cos(2*s.Phi)
	return clampByte(base + 24*math.Sin(2*s.Phi+1)),
		clampByte(base + 24*math.Cos(s.Theta)),
		clampByte(0.85 * base)
}

func clampByte(x float64) byte {
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return byte(x)
}

var (
	inputMu    sync.Mutex
	inputCache = map[projection.Method]*frame.Frame{}
)

// InputFrame returns the deterministic test panorama for a projection.
// The frame is cached and shared; callers must treat it as read-only.
func InputFrame(m projection.Method) *frame.Frame {
	inputMu.Lock()
	defer inputMu.Unlock()
	if f, ok := inputCache[m]; ok {
		return f
	}
	w, h := erpW, erpH
	if m != projection.ERP {
		w, h = cubeW, cubeH
	}
	f := frame.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dir := projection.ToSphere(m, (float64(x)+0.5)/float64(w), (float64(y)+0.5)/float64(h))
			r, g, b := paint(dir)
			f.Set(x, y, r, g, b)
		}
	}
	inputCache[m] = f
	return f
}

// Checksum returns the FNV-1a hash of a frame's dimensions and pixels — the
// golden-vector fingerprint of a rendered FOV frame.
func Checksum(f *frame.Frame) uint64 {
	h := fnv.New64a()
	var dims [8]byte
	binary.LittleEndian.PutUint32(dims[:4], uint32(f.W))
	binary.LittleEndian.PutUint32(dims[4:], uint32(f.H))
	h.Write(dims[:]) //nolint:errcheck // fnv never fails
	h.Write(f.Pix)   //nolint:errcheck
	return h.Sum64()
}

// Metrics quantifies one case's pte-vs-pt divergence plus the golden
// fingerprints of both outputs.
type Metrics struct {
	Checksum    uint64  // pt reference FOV frame
	PTEChecksum uint64  // pte fixed-point FOV frame
	MaxAbsErr   int     // worst per-channel absolute error, [0, 255]
	MAE         float64 // mean absolute per-channel error, normalized to [0, 1]
	PSNR        float64 // dB, +Inf capped at 99
	SPSNR       float64 // solid-angle-weighted viewport PSNR, dB, capped at 99
	SSIM        float64
	DiffFrac    float64 // fraction of pixels differing in any channel
}

// Result is one executed conformance case.
type Result struct {
	Case    Case
	Metrics Metrics
}

// RunCase executes one corpus case through all implementations. It returns
// an error when a byte-identity invariant is violated (pt parallel, gpusim,
// the exact-mode mapping LUT, pte parallel); budget checking against the
// fixed-point divergence metrics is the manifest's job.
func RunCase(c Case) (Result, error) {
	full := InputFrame(c.Projection)
	cfg := c.PTConfig()

	ref, err := pt.RenderChecked(cfg, full, c.Pose)
	if err != nil {
		return Result{}, fmt.Errorf("%s: pt: %w", c.Name, err)
	}
	par, err := pt.RenderParallelChecked(cfg, full, c.Pose, c.Workers)
	if err != nil {
		return Result{}, fmt.Errorf("%s: pt parallel: %w", c.Name, err)
	}
	if !ref.Equal(par) {
		return Result{}, fmt.Errorf("%s: pt.RenderParallel(workers=%d) not byte-identical to serial render", c.Name, c.Workers)
	}
	pt.Recycle(par)

	// The exact-mode mapping LUT claims byte identity with the reference for
	// every pose — make that a gated invariant, not a package-local test.
	lr, err := ptlut.NewRenderer(cfg, nil, ptlut.Options{})
	if err != nil {
		return Result{}, fmt.Errorf("%s: ptlut: %w", c.Name, err)
	}
	lout, err := lr.RenderChecked(full, c.Pose, c.Workers)
	if err != nil {
		return Result{}, fmt.Errorf("%s: ptlut render: %w", c.Name, err)
	}
	if !ref.Equal(lout) {
		return Result{}, fmt.Errorf("%s: exact-mode ptlut render (workers=%d) not byte-identical to pt reference", c.Name, c.Workers)
	}
	pt.Recycle(lout)

	gpu, err := gpusim.New(gpusim.DefaultConfig(cfg))
	if err != nil {
		return Result{}, fmt.Errorf("%s: gpusim: %w", c.Name, err)
	}
	gout := gpu.Render(full, c.Pose)
	if !ref.Equal(gout) {
		return Result{}, fmt.Errorf("%s: gpusim output not byte-identical to pt reference", c.Name)
	}

	eng, err := pte.New(pte.DefaultConfig(c.Projection, c.Filter, cfg.Viewport))
	if err != nil {
		return Result{}, fmt.Errorf("%s: pte: %w", c.Name, err)
	}
	pteOut := eng.Render(full, c.Pose)
	ptePar := eng.RenderParallel(full, c.Pose, c.Workers)
	if !pteOut.Equal(ptePar) {
		return Result{}, fmt.Errorf("%s: pte.RenderParallel(workers=%d) not byte-identical to pte.Render", c.Name, c.Workers)
	}

	return Result{Case: c, Metrics: measure(ref, pteOut)}, nil
}

// Measure computes the divergence metrics between a reference render and an
// approximate one — the same arithmetic the golden manifest is built from,
// exported so other approximate paths (the quantized mapping LUT) can hold
// themselves to the per-class budgets.
func Measure(ref, approx *frame.Frame) Metrics { return measure(ref, approx) }

// measure computes the divergence metrics between the float reference and
// the fixed-point output.
func measure(ref, fixed *frame.Frame) Metrics {
	m := Metrics{
		Checksum:    Checksum(ref),
		PTEChecksum: Checksum(fixed),
		MAE:         round6(frame.MAE(ref, fixed)),
		SSIM:        round6(quality.SSIM(ref, fixed)),
	}
	psnr := frame.PSNR(ref, fixed)
	if math.IsInf(psnr, 1) || psnr > 99 {
		psnr = 99
	}
	m.PSNR = round6(psnr)
	// Spherically-weighted viewport PSNR: each output pixel weighted by the
	// solid angle its image-plane cell subtends, so corner pixels — which a
	// viewer sees compressed — count for less. The corpus shares one FOV, so
	// the table follows from the frame's own geometry.
	wt := quality.ViewportWeights(projection.Viewport{
		Width: ref.W, Height: ref.H, FOVX: fovRad, FOVY: fovRad,
	})
	spsnr, err := wt.WeightedPSNR(ref, fixed)
	if err != nil { // unreachable: the table is built from ref's own dims
		spsnr = 0
	}
	if math.IsInf(spsnr, 1) || spsnr > 99 {
		spsnr = 99
	}
	m.SPSNR = round6(spsnr)
	diff := 0
	for p := 0; p < len(ref.Pix); p += 3 {
		pixDiff := false
		for k := 0; k < 3; k++ {
			d := int(ref.Pix[p+k]) - int(fixed.Pix[p+k])
			if d < 0 {
				d = -d
			}
			if d > m.MaxAbsErr {
				m.MaxAbsErr = d
			}
			if d != 0 {
				pixDiff = true
			}
		}
		if pixDiff {
			diff++
		}
	}
	m.DiffFrac = round6(float64(diff) * 3 / float64(len(ref.Pix)))
	return m
}

// round6 rounds to 6 decimals so manifest floats re-marshal byte-identically
// across regenerations.
func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }
