package conformance

import (
	"fmt"
	"math"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/projection"
	"evr/internal/pt"
	"evr/internal/pte"
)

// Metamorphic properties: oracle-free invariants of the render pipeline.
// Where differential testing asks "do the implementations agree?", these ask
// "does the reference implementation agree with geometry?" — so a bug shared
// by all three implementations still gets caught.

// CheckIdentityPassthrough verifies that a 90°×90° identity-pose render of a
// CMP panorama with nearest filtering reproduces the +Z (front) face of the
// input byte-for-byte: every output ray lands exactly on an input pixel
// center (up to ~1e-13 px of float noise, absorbed by nearest rounding).
func CheckIdentityPassthrough() error {
	full := InputFrame(projection.CMP)
	face := full.W / 3 // 80
	cfg := pt.Config{
		Projection: projection.CMP,
		Filter:     pt.Nearest,
		Viewport: projection.Viewport{
			Width: face, Height: face,
			FOVX: math.Pi / 2, FOVY: math.Pi / 2,
		},
	}
	out, err := pt.RenderChecked(cfg, full, geom.Orientation{})
	if err != nil {
		return fmt.Errorf("identity passthrough: %w", err)
	}
	// +Z sits at column 1, row 1 of the 3×2 layout.
	x0, y0 := face, face
	for j := 0; j < face; j++ {
		for i := 0; i < face; i++ {
			wr, wg, wb := full.At(x0+i, y0+j)
			gr, gg, gb := out.At(i, j)
			if wr != gr || wg != gg || wb != gb {
				return fmt.Errorf("identity passthrough: output (%d,%d) = (%d,%d,%d), want front-face pixel (%d,%d,%d)",
					i, j, gr, gg, gb, wr, wg, wb)
			}
		}
	}
	return nil
}

// shiftX returns a copy of f with every row rotated left by k pixels:
// g(x) = f((x+k) mod W). For an ERP panorama this is an exact yaw rotation
// of the scene by 2πk/W.
func shiftX(f *frame.Frame, k int) *frame.Frame {
	g := frame.New(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r, gg, b := f.At((x+k)%f.W, y)
			g.Set(x, y, r, gg, b)
		}
	}
	return g
}

// checkYawShift verifies ERP yaw-equivariance for a k-pixel scene rotation:
// rendering the original panorama under head yaw 2πk/W must match rendering
// the k-shifted panorama under the base pose. The two float paths differ by
// rotation-matrix rounding (~1e-15 rad), so a small number of pixels at
// nearest-rounding boundaries may flip; the property bounds the aggregate
// error instead of demanding bit equality.
func checkYawShift(f pt.Filter, k int, base geom.Orientation, what string) error {
	full := InputFrame(projection.ERP)
	cfg := pt.Config{
		Projection: projection.ERP,
		Filter:     f,
		Viewport: projection.Viewport{
			Width: vpSize, Height: vpSize,
			FOVX: fovRad, FOVY: fovRad,
		},
	}
	rotated := base
	rotated.Yaw += 2 * math.Pi * float64(k) / float64(full.W)
	a, err := pt.RenderChecked(cfg, full, rotated)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	b, err := pt.RenderChecked(cfg, shiftX(full, k), base)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	m := measure(a, b)
	const maxMAE, maxDiffFrac = 1e-3, 0.02
	if m.MAE > maxMAE || m.DiffFrac > maxDiffFrac {
		return fmt.Errorf("%s (%v, k=%d): MAE %g (budget %g), %.2f%% pixels differ (budget %.2f%%), maxAbs %d",
			what, f, k, m.MAE, maxMAE, 100*m.DiffFrac, 100*maxDiffFrac, m.MaxAbsErr)
	}
	return nil
}

// CheckYawEquivariance runs the ERP rotate-input ↔ rotate-pose property for
// both filters at a quarter-turn and a small shift.
func CheckYawEquivariance() error {
	for _, f := range []pt.Filter{pt.Nearest, pt.Bilinear} {
		for _, k := range []int{1, erpW / 4} {
			if err := checkYawShift(f, k, geom.Orientation{Pitch: 0.2}, "yaw equivariance"); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckSeamContinuity exercises the ERP ±180° longitude seam: a half-turn
// scene rotation viewed at the base pose must equal the original panorama
// viewed at yaw π, with the seam running through the center of the
// viewport. A border-clamp regression at the seam (instead of wrap) breaks
// this immediately.
func CheckSeamContinuity() error {
	for _, f := range []pt.Filter{pt.Nearest, pt.Bilinear} {
		if err := checkYawShift(f, erpW/2, geom.Orientation{}, "seam continuity"); err != nil {
			return err
		}
	}
	return nil
}

// CheckProjectionRoundTrip bounds the ToPlane ∘ ToSphere round trip for
// every projection: directions (including poles, cube corners, and seam
// neighbors) must survive sphere → plane → sphere within an angular bound,
// and interior plane points must survive plane → sphere → plane.
func CheckProjectionRoundTrip() error {
	dirs := []geom.Vec3{
		{Y: 1}, {Y: -1}, {Z: 1}, {Z: -1}, {X: 1}, {X: -1},
		geom.Vec3{X: 1, Y: 1, Z: 1}.Normalize(),
		geom.Vec3{X: -1, Y: 1, Z: -1}.Normalize(),
		geom.Vec3{X: 1, Z: 1}.Normalize(),
		geom.Vec3{X: -0.001, Z: -1}.Normalize(), // just past the seam
	}
	state := uint64(0xD1FF)
	for i := 0; i < 50; i++ {
		dirs = append(dirs, geom.Spherical{
			Theta: (rand01(&state)*2 - 1) * math.Pi,
			Phi:   (rand01(&state) - 0.5) * math.Pi,
		}.ToCartesian())
	}
	for _, m := range projection.Methods {
		for _, d := range dirs {
			u, v := projection.ToPlane(m, d)
			back := projection.ToSphere(m, u, v)
			dot := back.Dot(d)
			if dot > 1 {
				dot = 1
			}
			if ang := math.Acos(dot); ang > 1e-7 {
				return fmt.Errorf("round trip: %v dir %+v drifted %g rad through (%.9f, %.9f)", m, d, ang, u, v)
			}
		}
		// Plane round trip over an interior grid (face boundaries excluded:
		// there the same direction legitimately maps to either face).
		for gy := 0; gy < 8; gy++ {
			for gx := 0; gx < 12; gx++ {
				u := (float64(gx) + 0.37) / 12
				v := (float64(gy) + 0.41) / 8
				u2, v2 := projection.ToPlane(m, projection.ToSphere(m, u, v))
				du := math.Abs(u2 - u)
				if du > 0.5 {
					du = 1 - du
				}
				if du > 1e-9 || math.Abs(v2-v) > 1e-9 {
					return fmt.Errorf("round trip: %v plane (%g, %g) → (%g, %g)", m, u, v, u2, v2)
				}
			}
		}
	}
	return nil
}

// CheckPassthrough verifies the PTE passthrough path (a SAS hit) forwards a
// pre-rendered FOV frame untouched and charges only DMA cycles.
func CheckPassthrough() error {
	vp := projection.Viewport{Width: vpSize, Height: vpSize, FOVX: fovRad, FOVY: fovRad}
	eng, err := pte.New(pte.DefaultConfig(projection.ERP, pt.Bilinear, vp))
	if err != nil {
		return fmt.Errorf("passthrough: %w", err)
	}
	full := InputFrame(projection.ERP)
	fov := pt.Render(pt.Config{Projection: projection.ERP, Filter: pt.Bilinear, Viewport: vp}, full, geom.Orientation{Yaw: 1})
	before := Checksum(fov)
	out := eng.Passthrough(fov)
	if Checksum(out) != before {
		return fmt.Errorf("passthrough: frame modified")
	}
	st := eng.Stats()
	if st.Passthroughs != 1 || st.Frames != 0 || st.OutputPixels != 0 {
		return fmt.Errorf("passthrough: unexpected stats %+v", st)
	}
	return nil
}

// RunMetamorphic executes every metamorphic property and returns the
// violations (empty = all hold).
func RunMetamorphic() []string {
	checks := []func() error{
		CheckIdentityPassthrough,
		CheckYawEquivariance,
		CheckSeamContinuity,
		CheckProjectionRoundTrip,
		CheckPassthrough,
	}
	var v []string
	for _, c := range checks {
		if err := c(); err != nil {
			v = append(v, err.Error())
		}
	}
	return v
}
