package conformance

import (
	"strings"
	"testing"
)

// TestMetamorphicProperties runs each oracle-free property as its own
// subtest so a regression names the broken invariant directly.
func TestMetamorphicProperties(t *testing.T) {
	checks := []struct {
		name  string
		check func() error
	}{
		{"identity-passthrough", CheckIdentityPassthrough},
		{"yaw-equivariance", CheckYawEquivariance},
		{"seam-continuity", CheckSeamContinuity},
		{"projection-round-trip", CheckProjectionRoundTrip},
		{"pte-passthrough", CheckPassthrough},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			if err := c.check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunMetamorphic pins the aggregate entry point the evrconform gate
// calls.
func TestRunMetamorphic(t *testing.T) {
	if v := RunMetamorphic(); len(v) > 0 {
		t.Fatalf("metamorphic violations:\n  %s", strings.Join(v, "\n  "))
	}
}
