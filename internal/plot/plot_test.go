package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func demoChart() Chart {
	return Chart{
		Title:   "Demo & <chart>",
		YLabel:  "percent",
		XLabels: []string{"a", "b", "c"},
		Series: []Series{
			{Name: "one", Y: []float64{10, 20, 30}},
			{Name: "two", Y: []float64{5, 15, 25}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := demoChart().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := demoChart()
	bad.XLabels = nil
	if err := bad.Validate(); err == nil {
		t.Error("no labels accepted")
	}
	bad = demoChart()
	bad.Series = nil
	if err := bad.Validate(); err == nil {
		t.Error("no series accepted")
	}
	bad = demoChart()
	bad.Series[0].Y = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("ragged series accepted")
	}
	bad = demoChart()
	bad.Series[0].Y[1] = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN accepted")
	}
}

// wellFormed parses the SVG with encoding/xml to catch broken markup.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestBarSVG(t *testing.T) {
	svg, err := demoChart().BarSVG(480, 300)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	// 1 background + 2 legend swatches + 6 bars = 9 rects.
	if got := strings.Count(svg, "<rect"); got != 9 {
		t.Errorf("rect count = %d, want 9", got)
	}
	for _, want := range []string{"Demo &amp; &lt;chart&gt;", "percent", "one", "two"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestLineSVG(t *testing.T) {
	svg, err := demoChart().LineSVG(480, 300)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2", got)
	}
}

func TestErrorsPropagate(t *testing.T) {
	bad := Chart{}
	if _, err := bad.BarSVG(100, 100); err == nil {
		t.Error("BarSVG accepted empty chart")
	}
	if _, err := bad.LineSVG(100, 100); err == nil {
		t.Error("LineSVG accepted empty chart")
	}
}

func TestYMaxRounding(t *testing.T) {
	cases := []struct {
		max  float64
		want float64
	}{
		{0, 1}, {0.8, 1}, {1.7, 2}, {2.2, 2.5}, {4.9, 5}, {7, 10}, {43, 50}, {97, 100},
	}
	for _, tc := range cases {
		c := Chart{XLabels: []string{"x"}, Series: []Series{{Name: "s", Y: []float64{tc.max}}}}
		if got := c.yMax(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("yMax(%v) = %v, want %v", tc.max, got, tc.want)
		}
	}
}

func TestSingleLabelLine(t *testing.T) {
	c := Chart{XLabels: []string{"only"}, Series: []Series{{Name: "s", Y: []float64{3}}}}
	svg, err := c.LineSVG(200, 150)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
}

func TestManyLabelsThinned(t *testing.T) {
	labels := make([]string, 40)
	ys := make([]float64, 40)
	for i := range labels {
		labels[i] = trimFloat(float64(i))
		ys[i] = float64(i)
	}
	c := Chart{Title: "dense", XLabels: labels, Series: []Series{{Name: "s", Y: ys}}}
	svg, err := c.LineSVG(640, 300)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	// Tick labels must be thinned below the label count.
	if got := strings.Count(svg, `text-anchor="middle"`); got >= 40 {
		t.Errorf("x labels not thinned: %d", got)
	}
}

func TestStackedBarSVG(t *testing.T) {
	svg, err := demoChart().StackedBarSVG(480, 300)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	// 1 background + 2 legend swatches + 3 stacks × 2 segments = 9 rects.
	if got := strings.Count(svg, "<rect"); got != 9 {
		t.Errorf("rect count = %d, want 9", got)
	}
	// Negative values are rejected (a stack cannot go below the axis).
	bad := demoChart()
	bad.Series[0].Y[0] = -1
	if _, err := bad.StackedBarSVG(480, 300); err == nil {
		t.Error("negative stacked value accepted")
	}
	if _, err := (Chart{}).StackedBarSVG(100, 100); err == nil {
		t.Error("empty chart accepted")
	}
}
