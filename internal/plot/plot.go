// Package plot renders experiment results as standalone SVG charts — the
// figure-shaped counterpart of the experiments package's tables, so the
// paper's plots can be regenerated as images with no external tooling.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line or bar group.
type Series struct {
	Name string
	Y    []float64
}

// Chart is a titled chart over categorical x positions.
type Chart struct {
	Title   string
	YLabel  string
	XLabels []string
	Series  []Series
}

// palette holds the series colors.
var palette = []string{"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c"}

// Validate reports whether the chart is renderable.
func (c Chart) Validate() error {
	if len(c.XLabels) == 0 {
		return fmt.Errorf("plot: no x labels")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.XLabels) {
			return fmt.Errorf("plot: series %q has %d points for %d labels", s.Name, len(s.Y), len(c.XLabels))
		}
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("plot: series %q has a non-finite value", s.Name)
			}
		}
	}
	return nil
}

// yMax returns a rounded-up axis maximum.
func (c Chart) yMax() float64 {
	var m float64
	for _, s := range c.Series {
		for _, v := range s.Y {
			if v > m {
				m = v
			}
		}
	}
	if m <= 0 {
		return 1
	}
	// Round up to a pleasant tick.
	mag := math.Pow(10, math.Floor(math.Log10(m)))
	for _, step := range []float64{1, 2, 2.5, 5, 10} {
		if m <= step*mag {
			return step * mag
		}
	}
	return 10 * mag
}

// geometry constants.
const (
	marginL = 64
	marginR = 16
	marginT = 36
	marginB = 48
	ticks   = 4
)

// header emits the SVG prologue, title, axes, and y grid/ticks.
func (c Chart) header(w, h int, ymax float64) *strings.Builder {
	b := &strings.Builder{}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(b, `<text x="%d" y="22" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`, marginL, esc(c.Title))
	// Y label (rotated).
	fmt.Fprintf(b, `<text x="14" y="%d" font-family="sans-serif" font-size="11" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`,
		(marginT+h-marginB)/2, (marginT+h-marginB)/2, esc(c.YLabel))
	// Gridlines and tick labels.
	plotH := h - marginT - marginB
	for i := 0; i <= ticks; i++ {
		y := marginT + plotH - i*plotH/ticks
		val := ymax * float64(i) / ticks
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#dddddd"/>`, marginL, y, w-marginR, y)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`,
			marginL-6, y+4, trimFloat(val))
	}
	return b
}

// legend emits the series legend at the top right.
func (c Chart) legend(b *strings.Builder, w int) {
	x := w - marginR - 110
	for i, s := range c.Series {
		y := marginT + 14*i
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, x, y-9, palette[i%len(palette)])
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`, x+14, y, esc(s.Name))
	}
}

// BarSVG renders grouped bars.
func (c Chart) BarSVG(w, h int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	ymax := c.yMax()
	b := c.header(w, h, ymax)
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB
	groups := len(c.XLabels)
	groupW := float64(plotW) / float64(groups)
	barW := groupW * 0.8 / float64(len(c.Series))
	for gi, label := range c.XLabels {
		gx := float64(marginL) + groupW*float64(gi)
		for si, s := range c.Series {
			v := s.Y[gi]
			bh := int(float64(plotH) * v / ymax)
			x := gx + groupW*0.1 + barW*float64(si)
			fmt.Fprintf(b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`,
				x, marginT+plotH-bh, barW, bh, palette[si%len(palette)])
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			gx+groupW/2, h-marginB+16, esc(label))
	}
	c.legend(b, w)
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// StackedBarSVG renders one bar per x position with the series stacked —
// the right form for compositions like the per-component power split.
func (c Chart) StackedBarSVG(w, h int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	// Axis maximum is the largest stack total.
	var ymax float64
	for xi := range c.XLabels {
		var sum float64
		for _, s := range c.Series {
			if s.Y[xi] < 0 {
				return "", fmt.Errorf("plot: stacked bars need non-negative values (series %q)", s.Name)
			}
			sum += s.Y[xi]
		}
		if sum > ymax {
			ymax = sum
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	tmp := Chart{Series: []Series{{Y: []float64{ymax}}}, XLabels: []string{""}}
	ymax = tmp.yMax()
	b := c.header(w, h, ymax)
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB
	groups := len(c.XLabels)
	groupW := float64(plotW) / float64(groups)
	barW := groupW * 0.6
	for gi, label := range c.XLabels {
		gx := float64(marginL) + groupW*float64(gi) + groupW*0.2
		yBase := marginT + plotH
		for si, s := range c.Series {
			bh := int(float64(plotH) * s.Y[gi] / ymax)
			yBase -= bh
			fmt.Fprintf(b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`,
				gx, yBase, barW, bh, palette[si%len(palette)])
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			gx+barW/2, h-marginB+16, esc(label))
	}
	c.legend(b, w)
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// LineSVG renders one polyline per series.
func (c Chart) LineSVG(w, h int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	ymax := c.yMax()
	b := c.header(w, h, ymax)
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB
	n := len(c.XLabels)
	xAt := func(i int) float64 {
		if n == 1 {
			return float64(marginL) + float64(plotW)/2
		}
		return float64(marginL) + float64(plotW)*float64(i)/float64(n-1)
	}
	for si, s := range c.Series {
		var pts []string
		for i, v := range s.Y {
			y := float64(marginT+plotH) - float64(plotH)*v/ymax
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAt(i), y))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), palette[si%len(palette)])
	}
	step := 1
	if n > 12 {
		step = n / 12
	}
	for i := 0; i < n; i += step {
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			xAt(i), h-marginB+16, esc(c.XLabels[i]))
	}
	c.legend(b, w)
	b.WriteString(`</svg>`)
	return b.String(), nil
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return strings.TrimSuffix(s, ".0")
}
