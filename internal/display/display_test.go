package display

import (
	"math/rand"
	"testing"
	"testing/quick"

	"evr/internal/frame"
)

func randFrame(w, h int, seed int64) *frame.Frame {
	rng := rand.New(rand.NewSource(seed))
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = byte(rng.Intn(256))
	}
	return f
}

func TestColorConversionAnchors(t *testing.T) {
	// Black, white, and mid-gray have known YCbCr values.
	y, cb, cr := RGBToYCbCr(0, 0, 0)
	if y != 0 || cb != 128 || cr != 128 {
		t.Errorf("black -> %d,%d,%d", y, cb, cr)
	}
	y, cb, cr = RGBToYCbCr(255, 255, 255)
	if y != 255 || cb != 128 || cr != 128 {
		t.Errorf("white -> %d,%d,%d", y, cb, cr)
	}
	y, _, cr = RGBToYCbCr(255, 0, 0)
	if y != 76 || cr < 250 {
		t.Errorf("red -> y=%d cr=%d", y, cr)
	}
}

func TestColorRoundTripProperty(t *testing.T) {
	prop := func(r, g, b byte) bool {
		y, cb, cr := RGBToYCbCr(r, g, b)
		r2, g2, b2 := YCbCrToRGB(y, cb, cr)
		return absDiff(r, r2) <= 2 && absDiff(g, g2) <= 2 && absDiff(b, b2) <= 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(110))}); err != nil {
		t.Error(err)
	}
}

func absDiff(a, b byte) int {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	return d
}

func TestFrameColorRoundTrip(t *testing.T) {
	f := randFrame(16, 8, 111)
	back := ToRGB(ToYCbCr(f))
	if mae := frame.MAE(f, back); mae > 2.0/255 {
		t.Errorf("frame color round trip MAE = %v", mae)
	}
}

func TestRotationsCompose(t *testing.T) {
	f := randFrame(12, 8, 112)
	// Four 90° turns are the identity.
	r := f
	for i := 0; i < 4; i++ {
		r = Rotate(r, Rotate90)
	}
	if !r.Equal(f) {
		t.Error("4×90° is not identity")
	}
	// Two 90° turns equal one 180°.
	twice := Rotate(Rotate(f, Rotate90), Rotate90)
	if !twice.Equal(Rotate(f, Rotate180)) {
		t.Error("90°+90° != 180°")
	}
	// 90° then 270° is identity.
	if !Rotate(Rotate(f, Rotate90), Rotate270).Equal(f) {
		t.Error("90°+270° != identity")
	}
}

func TestRotate90Geometry(t *testing.T) {
	f := frame.New(3, 2)
	f.Set(0, 0, 255, 0, 0) // top-left marker
	r := Rotate(f, Rotate90)
	if r.W != 2 || r.H != 3 {
		t.Fatalf("rotated frame is %dx%d", r.W, r.H)
	}
	// Clockwise: top-left goes to top-right.
	if red, _, _ := r.At(1, 0); red != 255 {
		t.Error("top-left marker did not land at top-right")
	}
}

func TestRotate0Copies(t *testing.T) {
	f := randFrame(4, 4, 113)
	r := Rotate(f, Rotate0)
	if !r.Equal(f) {
		t.Error("identity rotation changed pixels")
	}
	r.Set(0, 0, 1, 2, 3)
	if f.Equal(r) {
		t.Error("identity rotation aliased storage")
	}
}

func TestScale(t *testing.T) {
	f := frame.New(4, 4)
	f.Fill(10, 20, 30)
	up, err := Scale(f, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if up.W != 16 || up.H != 8 {
		t.Fatalf("scaled to %dx%d", up.W, up.H)
	}
	for i := 0; i < len(up.Pix); i += 3 {
		if up.Pix[i] != 10 || up.Pix[i+1] != 20 || up.Pix[i+2] != 30 {
			t.Fatal("uniform frame changed under scaling")
		}
	}
	if _, err := Scale(f, 0, 5); err == nil {
		t.Error("zero target accepted")
	}
}

func TestPipelineProcess(t *testing.T) {
	f := randFrame(8, 4, 114)
	p := Pipeline{Rotation: Rotate90, PanelW: 10, PanelH: 20}
	out, err := p.Process(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 10 || out.H != 20 {
		t.Fatalf("pipeline output %dx%d", out.W, out.H)
	}
	// No-op pipeline returns equal pixels.
	same, err := (Pipeline{}).Process(f)
	if err != nil || !same.Equal(f) {
		t.Error("no-op pipeline changed the frame")
	}
}
