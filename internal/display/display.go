// Package display models the Display Processor IP of the SoC (Fig. 2, §2):
// the block that performs "necessary pixel manipulations (e.g., color-space
// conversion, rotation)" and scans frames out to the panel. In conventional
// planar playback the GPU is bypassed and this block is the whole
// post-decode pipeline; under SAS, FOV-hit frames take exactly that path.
//
// The operations are real pixel transforms (integer BT.601 color
// conversion, quarter-turn rotations, bilinear scaling), so the player can
// assemble an actual scanout path and tests can verify it end to end.
package display

import (
	"fmt"

	"evr/internal/frame"
)

// divRound divides with round-half-away-from-zero, correct for negatives.
func divRound(num, den int) int {
	if num >= 0 {
		return (num + den/2) / den
	}
	return -((-num + den/2) / den)
}

// RGBToYCbCr converts an 8-bit RGB triple to full-range BT.601 YCbCr using
// integer arithmetic, as display/codec hardware does.
func RGBToYCbCr(r, g, b byte) (y, cb, cr byte) {
	ri, gi, bi := int(r), int(g), int(b)
	yy := divRound(299*ri+587*gi+114*bi, 1000)
	cbb := 128 + divRound(-168736*ri-331264*gi+500000*bi, 1000000)
	crr := 128 + divRound(500000*ri-418688*gi-81312*bi, 1000000)
	return clamp8(yy), clamp8(cbb), clamp8(crr)
}

// YCbCrToRGB inverts RGBToYCbCr (within integer rounding).
func YCbCrToRGB(y, cb, cr byte) (r, g, b byte) {
	yi := int(y)
	cbi := int(cb) - 128
	cri := int(cr) - 128
	rr := yi + divRound(1402*cri, 1000)
	gg := yi - divRound(344136*cbi+714136*cri, 1000000)
	bb := yi + divRound(1772*cbi, 1000)
	return clamp8(rr), clamp8(gg), clamp8(bb)
}

func clamp8(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// ToYCbCr converts a whole frame in place-order into a new frame whose
// channels hold (Y, Cb, Cr).
func ToYCbCr(f *frame.Frame) *frame.Frame {
	out := frame.New(f.W, f.H)
	for i := 0; i < len(f.Pix); i += 3 {
		y, cb, cr := RGBToYCbCr(f.Pix[i], f.Pix[i+1], f.Pix[i+2])
		out.Pix[i], out.Pix[i+1], out.Pix[i+2] = y, cb, cr
	}
	return out
}

// ToRGB converts a (Y, Cb, Cr) frame back to RGB.
func ToRGB(f *frame.Frame) *frame.Frame {
	out := frame.New(f.W, f.H)
	for i := 0; i < len(f.Pix); i += 3 {
		r, g, b := YCbCrToRGB(f.Pix[i], f.Pix[i+1], f.Pix[i+2])
		out.Pix[i], out.Pix[i+1], out.Pix[i+2] = r, g, b
	}
	return out
}

// Rotation selects a quarter-turn scanout rotation (HMD panels are often
// mounted rotated).
type Rotation int

const (
	Rotate0 Rotation = iota
	Rotate90
	Rotate180
	Rotate270
)

// Rotate returns the frame rotated clockwise by the given quarter turns.
func Rotate(f *frame.Frame, rot Rotation) *frame.Frame {
	switch rot {
	case Rotate90:
		out := frame.New(f.H, f.W)
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				r, g, b := f.At(x, y)
				out.Set(f.H-1-y, x, r, g, b)
			}
		}
		return out
	case Rotate180:
		out := frame.New(f.W, f.H)
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				r, g, b := f.At(x, y)
				out.Set(f.W-1-x, f.H-1-y, r, g, b)
			}
		}
		return out
	case Rotate270:
		out := frame.New(f.H, f.W)
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				r, g, b := f.At(x, y)
				out.Set(y, f.W-1-x, r, g, b)
			}
		}
		return out
	default:
		return f.Clone()
	}
}

// Scale resizes a frame to (w, h) with bilinear resampling — the display
// processor's scaler.
func Scale(f *frame.Frame, w, h int) (*frame.Frame, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("display: target %dx%d must be positive", w, h)
	}
	out := frame.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := (float64(x)+0.5)/float64(w)*float64(f.W) - 0.5
			v := (float64(y)+0.5)/float64(h)*float64(f.H) - 0.5
			r, g, b := f.BilinearAt(u, v)
			out.Set(x, y, r, g, b)
		}
	}
	return out, nil
}

// Pipeline is a scanout configuration: optional rotation then scaling to
// the panel.
type Pipeline struct {
	Rotation       Rotation
	PanelW, PanelH int
}

// Process runs a decoded frame through the pipeline.
func (p Pipeline) Process(f *frame.Frame) (*frame.Frame, error) {
	out := Rotate(f, p.Rotation)
	if p.PanelW > 0 && p.PanelH > 0 && (out.W != p.PanelW || out.H != p.PanelH) {
		return Scale(out, p.PanelW, p.PanelH)
	}
	return out, nil
}
