// Package core assembles the complete EVR system (§4): the cloud component
// (semantic ingest analysis) and the client device (energy-accounted
// playback under any variant/use-case), plus the aggregation used by every
// energy figure in the evaluation — per-video results averaged over the
// 59-user trace corpus.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"evr/internal/client"
	"evr/internal/energy"
	"evr/internal/headtrace"
	"evr/internal/sas"
	"evr/internal/scene"
)

// System is an EVR deployment: SAS configuration, prepared per-video plans,
// and the device configuration template.
type System struct {
	SASConfig sas.Config

	mu    sync.RWMutex
	plans map[string]*sas.Plan
	specs map[string]scene.VideoSpec
}

// NewSystem returns a system with the paper's default design point.
func NewSystem() *System {
	return &System{
		SASConfig: sas.DefaultConfig(),
		plans:     make(map[string]*sas.Plan),
		specs:     make(map[string]scene.VideoSpec),
	}
}

// Prepare runs the ingest analysis for a video (the cloud side of Fig. 4)
// and caches its SAS plan.
func (s *System) Prepare(v scene.VideoSpec) error {
	plan, err := sas.BuildPlan(v, s.SASConfig)
	if err != nil {
		return fmt.Errorf("core: preparing %s: %w", v.Name, err)
	}
	s.mu.Lock()
	s.plans[v.Name] = plan
	s.specs[v.Name] = v
	s.mu.Unlock()
	return nil
}

// Plan returns the prepared plan for a video.
func (s *System) Plan(video string) (*sas.Plan, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.plans[video]
	return p, ok
}

// Summary aggregates playback results over a user population.
type Summary struct {
	Video   string
	Variant client.Variant
	UseCase client.UseCase
	Users   int

	Ledger energy.Ledger // merged over users

	FramesTotal   int
	FramesHit     int
	FramesPT      int
	FOVChecks     int
	FOVMisses     int
	DroppedFrames int

	StreamedBytes         int64
	BaselineStreamedBytes int64
	PTComputeJ            float64
	PTMemoryJ             float64
	RebufferCount         int
}

// ComputeMemoryJ returns the compute+memory energy — the paper's "compute
// energy" axis in Figs. 12 and 15.
func (s Summary) ComputeMemoryJ() float64 {
	return s.Ledger.Joules(energy.Compute) + s.Ledger.Joules(energy.Memory)
}

// PTShare returns PT's fraction of compute+memory energy (Fig. 3b).
func (s Summary) PTShare() float64 {
	cm := s.ComputeMemoryJ()
	if cm == 0 {
		return 0
	}
	return (s.PTComputeJ + s.PTMemoryJ) / cm
}

// MissRate returns the per-frame FOV miss rate.
func (s Summary) MissRate() float64 {
	if s.FOVChecks == 0 {
		return 0
	}
	return float64(s.FOVMisses) / float64(s.FOVChecks)
}

// FPSDropPct returns the percentage of frames lost to rebuffering.
func (s Summary) FPSDropPct() float64 {
	if s.FramesTotal == 0 {
		return 0
	}
	return 100 * float64(s.DroppedFrames) / float64(s.FramesTotal)
}

// BandwidthSavingPct returns streamed-byte reduction vs the baseline.
func (s Summary) BandwidthSavingPct() float64 {
	if s.BaselineStreamedBytes == 0 {
		return 0
	}
	return 100 * (1 - float64(s.StreamedBytes)/float64(s.BaselineStreamedBytes))
}

// ComputeSavingPct returns this summary's compute+memory energy saving
// relative to a baseline summary.
func (s Summary) ComputeSavingPct(baseline Summary) float64 {
	b := baseline.ComputeMemoryJ()
	if b == 0 {
		return 0
	}
	return 100 * (1 - s.ComputeMemoryJ()/b)
}

// DeviceSavingPct returns the total device energy saving vs a baseline.
func (s Summary) DeviceSavingPct(baseline Summary) float64 {
	b := baseline.Ledger.Total()
	if b == 0 {
		return 0
	}
	return 100 * (1 - s.Ledger.Total()/b)
}

// EvaluateOptions tunes an evaluation run.
type EvaluateOptions struct {
	Users  int           // traces to simulate (default: headtrace.DatasetUsers)
	Config client.Config // device configuration; zero value → DefaultConfig
}

// Evaluate plays a prepared video for a user population under the given
// variant/use-case and returns the merged summary.
func (s *System) Evaluate(video string, variant client.Variant, uc client.UseCase, opts EvaluateOptions) (Summary, error) {
	s.mu.RLock()
	plan, ok := s.plans[video]
	spec, okSpec := s.specs[video]
	s.mu.RUnlock()
	if !ok || !okSpec {
		return Summary{}, fmt.Errorf("core: video %q not prepared", video)
	}
	users := opts.Users
	if users <= 0 {
		users = headtrace.DatasetUsers
	}
	cfg := opts.Config
	if cfg.NominalW == 0 { // zero value: use the evaluation defaults
		cfg = client.DefaultConfig(variant, uc)
	} else {
		cfg.Variant = variant
		cfg.UseCase = uc
	}
	cfg.SAS = plan.Cfg // the plan's geometry governs hit checking

	// Users are independent: simulate them concurrently, then merge in
	// user order so float accumulation stays deterministic.
	results := make([]client.Result, users)
	errs := make([]error, users)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for u := 0; u < users; u++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(u int) {
			defer wg.Done()
			defer func() { <-sem }()
			tr := headtrace.Generate(spec, u)
			results[u], errs[u] = client.Simulate(spec, tr, plan, cfg)
		}(u)
	}
	wg.Wait()

	sum := Summary{Video: video, Variant: variant, UseCase: uc, Users: users}
	for u := 0; u < users; u++ {
		if errs[u] != nil {
			return Summary{}, fmt.Errorf("core: simulating %s user %d: %w", video, u, errs[u])
		}
		r := results[u]
		sum.Ledger.Merge(r.Ledger)
		sum.FramesTotal += r.FramesTotal
		sum.FramesHit += r.FramesHit
		sum.FramesPT += r.FramesPT
		sum.FOVChecks += r.FOVChecks
		sum.FOVMisses += r.FOVMisses
		sum.DroppedFrames += r.DroppedFrames
		sum.StreamedBytes += r.StreamedBytes
		sum.BaselineStreamedBytes += r.BaselineStreamedBytes
		sum.PTComputeJ += r.PTComputeJ
		sum.PTMemoryJ += r.PTMemoryJ
		sum.RebufferCount += r.Net.RebufferCount
	}
	return sum, nil
}
