package core

import (
	"testing"

	"evr/internal/client"
	"evr/internal/scene"
)

func prepared(t *testing.T, video string) *System {
	t.Helper()
	s := NewSystem()
	v, ok := scene.ByName(video)
	if !ok {
		t.Fatalf("unknown video %q", video)
	}
	if err := s.Prepare(v); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPrepareAndPlan(t *testing.T) {
	s := prepared(t, "RS")
	if _, ok := s.Plan("RS"); !ok {
		t.Error("plan missing after Prepare")
	}
	if _, ok := s.Plan("Nope"); ok {
		t.Error("unknown plan found")
	}
}

func TestEvaluateUnpreparedFails(t *testing.T) {
	s := NewSystem()
	if _, err := s.Evaluate("RS", client.Baseline, client.OnlineStreaming, EvaluateOptions{Users: 1}); err == nil {
		t.Error("unprepared video evaluated")
	}
}

func TestEvaluateSummary(t *testing.T) {
	s := prepared(t, "RS")
	base, err := s.Evaluate("RS", client.Baseline, client.OnlineStreaming, EvaluateOptions{Users: 3})
	if err != nil {
		t.Fatal(err)
	}
	if base.Users != 3 || base.FramesTotal != 3*1800 {
		t.Fatalf("summary shape: %+v", base.Users)
	}
	sh, err := s.Evaluate("RS", client.SH, client.OnlineStreaming, EvaluateOptions{Users: 3})
	if err != nil {
		t.Fatal(err)
	}
	if save := sh.ComputeSavingPct(base); save < 15 || save > 60 {
		t.Errorf("S+H compute saving = %.1f%%, want substantial", save)
	}
	if save := sh.DeviceSavingPct(base); save < 10 || save > 50 {
		t.Errorf("S+H device saving = %.1f%%", save)
	}
	if sh.MissRate() <= 0 || sh.MissRate() > 0.3 {
		t.Errorf("miss rate = %v", sh.MissRate())
	}
	if base.PTShare() < 0.3 || base.PTShare() > 0.6 {
		t.Errorf("baseline PT share = %v, want ≈0.45", base.PTShare())
	}
	if sh.BandwidthSavingPct() <= 0 {
		t.Errorf("bandwidth saving = %v", sh.BandwidthSavingPct())
	}
}

func TestEvaluateDefaultsTo59Users(t *testing.T) {
	s := prepared(t, "Timelapse")
	sum, err := s.Evaluate("Timelapse", client.H, client.OfflinePlayback, EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Users != 59 {
		t.Errorf("default users = %d, want 59", sum.Users)
	}
}

func TestSummaryZeroSafe(t *testing.T) {
	var sum Summary
	if sum.PTShare() != 0 || sum.MissRate() != 0 || sum.FPSDropPct() != 0 ||
		sum.BandwidthSavingPct() != 0 || sum.ComputeSavingPct(Summary{}) != 0 ||
		sum.DeviceSavingPct(Summary{}) != 0 {
		t.Error("zero summary helpers not zero")
	}
}
