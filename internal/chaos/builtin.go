package chaos

import "sort"

// builtins are the named scenarios shipped with the harness. ci-smoke is
// the CI survival gate: small enough to run under -race in seconds, wide
// enough to cross live ingest, a mixed fleet, a mid-run shard kill and
// restart, a slow shard, a re-ingest, and a lossy link.
var builtins = map[string]func() *Scenario{
	"ci-smoke": func() *Scenario {
		return &Scenario{
			Name:          "ci-smoke",
			Seed:          42,
			Passes:        3,
			Segments:      2,
			Width:         96,
			ViewportScale: 32,
			Shards:        2,
			Live:          &LiveSpec{Video: "RS", IntervalMs: 120, QueueDepth: 2},
			Fleet: []Class{
				{Name: "live-erp", Users: 3, Video: "RS", Projection: "erp", HAR: true, Link: "wifi300"},
				{Name: "vod-cmp-lossy", Users: 2, Video: "Paris", Projection: "cmp", HAR: true, Link: "lossy", Loss: 0.05, CacheSegments: 2},
				{Name: "vod-eac-lite", Users: 2, Video: "NYC", Projection: "eac", HAR: true, PTETotalBits: 20, PTEIntBits: 8},
			},
			Faults: []Fault{
				{Type: FaultKillShard, Pass: 2, Shard: 0},
				{Type: FaultSlowShard, Pass: 2, Shard: 1, DelayMs: 2},
				{Type: FaultRestartShard, Pass: 3, Shard: 0},
				{Type: FaultReingest, Pass: 3, Video: "Paris"},
				{Type: FaultDropPublish, Seg: 1, Intervals: 1},
			},
			SLO: SLO{MaxFailures: 0, FreshnessP99Ms: 5000},
		}
	},
}

// Builtin returns a fresh copy of a named builtin scenario.
func Builtin(name string) (*Scenario, bool) {
	mk, ok := builtins[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// BuiltinNames lists the builtin scenarios, sorted.
func BuiltinNames() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
