package chaos

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"evr/internal/cluster"
	"evr/internal/loadgen"
	"evr/internal/server"
)

// Engine applies one scenario's fault schedule to a bound serving stack
// and builds the per-client fault transports. Bind whichever targets the
// scenario uses before the run; the zero fields are simply never faulted.
type Engine struct {
	sc *Scenario
	// Cluster receives shard kills/restarts and slow-shard latency; nil
	// for single-service targets.
	Cluster *cluster.Cluster
	// Service receives slow-shard latency when there is no cluster.
	Service *server.Service
	// Live receives drop-publish holds.
	Live *server.LiveStream
	// Reingest republishes one VOD video (same spec, same bytes) — the
	// purge-propagation fault. Set by the driver that owns ingest.
	Reingest func(video string) error

	mu          sync.Mutex
	schedule    []string
	transports  []*faultTransport
	classByName map[string]*Class
}

// NewEngine builds an engine for a validated scenario.
func NewEngine(sc *Scenario) *Engine {
	byName := make(map[string]*Class, len(sc.Fleet))
	for i := range sc.Fleet {
		byName[sc.Fleet[i].Name] = &sc.Fleet[i]
	}
	return &Engine{sc: sc, classByName: byName}
}

// Prepare applies setup-time faults — drop-publish holds must land before
// the live publisher starts. Call after Bind-ing Live, before Start.
func (e *Engine) Prepare() {
	for _, f := range e.sc.Faults {
		if f.Type == FaultDropPublish && e.Live != nil {
			e.Live.DelayPublish(f.Seg, f.Intervals)
			e.logf("setup: drop-publish %s seg %d held %d interval(s)", e.sc.Live.Video, f.Seg, f.Intervals)
		}
	}
}

// OnPassStart applies every fault scheduled for this pass and resets the
// fault transports' attempt sequences so each pass replays the identical
// loss/jitter schedule. Wire it as loadgen's OnPassStart hook.
func (e *Engine) OnPassStart(pass int) {
	e.mu.Lock()
	transports := append([]*faultTransport(nil), e.transports...)
	e.mu.Unlock()
	for _, t := range transports {
		t.resetAttempts()
	}
	for _, f := range e.sc.Faults {
		if f.Pass != pass || f.Type == FaultDropPublish {
			continue
		}
		switch f.Type {
		case FaultKillShard:
			if e.Cluster != nil {
				if err := e.Cluster.KillShard(f.Shard); err == nil {
					e.logf("pass %d: kill-shard %d", pass, f.Shard)
				}
			}
		case FaultRestartShard:
			if e.Cluster != nil {
				if err := e.Cluster.RestartShard(f.Shard); err == nil {
					e.logf("pass %d: restart-shard %d", pass, f.Shard)
				}
			}
		case FaultSlowShard:
			d := time.Duration(f.DelayMs) * time.Millisecond
			switch {
			case e.Cluster != nil:
				e.Cluster.Shard(f.Shard).SetStoreDelay(d)
			case e.Service != nil:
				e.Service.SetStoreDelay(d)
			}
			e.logf("pass %d: slow-shard %d store delay %v", pass, f.Shard, d)
		case FaultReingest:
			if e.Reingest != nil {
				if err := e.Reingest(f.Video); err != nil {
					e.logf("pass %d: reingest %s FAILED: %v", pass, f.Video, err)
				} else {
					e.logf("pass %d: reingest %s", pass, f.Video)
				}
			}
		}
	}
}

// WrapTransport is loadgen's per-user transport hook: each user gets a
// fault transport seeded from (scenario seed, user) carrying their class's
// network profile. Users of classes with no injected faults keep the base
// transport untouched.
func (e *Engine) WrapTransport(user int, class string, base http.RoundTripper) http.RoundTripper {
	c := e.classByName[class]
	if c == nil || (c.Loss == 0 && c.Link == "" && len(c.LinkTrace) == 0) {
		return base
	}
	t := newFaultTransport(base, uint64(e.sc.Seed)^(uint64(user)*0x9e3779b97f4a7c15), c)
	e.mu.Lock()
	e.transports = append(e.transports, t)
	e.mu.Unlock()
	return t
}

// Schedule returns the human-readable fault log, in application order —
// the run-to-run comparison artifact the determinism gate hashes.
func (e *Engine) Schedule() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.schedule...)
}

func (e *Engine) logf(format string, args ...any) {
	e.mu.Lock()
	e.schedule = append(e.schedule, fmt.Sprintf(format, args...))
	e.mu.Unlock()
}

// GateResult is the survival verdict for one run.
type GateResult struct {
	Passed   bool
	Problems []string
}

// Evaluate runs the survival gates over a finished load report:
//
//  1. failed sessions ≤ SLO.MaxFailures;
//  2. per-user displayed-frame checksums identical across passes (chaos
//     must never change pixels — caches, kills, and retries are invisible
//     to the display);
//  3. per-class modeled stalls per session ≤ SLO.MaxStallsPerSession;
//  4. per-class p99 time-behind-live ≤ SLO.FreshnessP99Ms for classes
//     that fetched at the live edge.
func Evaluate(sc *Scenario, rep *loadgen.Report) GateResult {
	var problems []string

	if failures := rep.Failures(); len(failures) > sc.SLO.MaxFailures {
		msgs := ""
		for i, f := range failures {
			if i == 3 {
				msgs += "; ..."
				break
			}
			if i > 0 {
				msgs += "; "
			}
			msgs += fmt.Sprintf("user %d pass %d: %v", f.User, f.Pass, f.Err)
		}
		problems = append(problems, fmt.Sprintf("%d session failures > budget %d (%s)", len(failures), sc.SLO.MaxFailures, msgs))
	}

	// Checksum gate: every successful session of a user must display the
	// same pixels regardless of which pass (and which fault mix) it ran
	// under.
	byUser := make(map[int]map[uint64][]int)
	for _, r := range rep.Results {
		if r.Err != nil {
			continue
		}
		if byUser[r.User] == nil {
			byUser[r.User] = make(map[uint64][]int)
		}
		byUser[r.User][r.Checksum] = append(byUser[r.User][r.Checksum], r.Pass)
	}
	var divergent []int
	for user, sums := range byUser {
		if len(sums) > 1 {
			divergent = append(divergent, user)
		}
	}
	sort.Ints(divergent)
	for _, user := range divergent {
		problems = append(problems, fmt.Sprintf("user %d checksum diverged across passes: %v", user, byUser[user]))
	}

	for _, cs := range rep.Classes {
		ok := cs.Sessions - cs.Failures
		if sc.SLO.MaxStallsPerSession > 0 && ok > 0 {
			if per := float64(cs.Stalls) / float64(ok); per > sc.SLO.MaxStallsPerSession {
				problems = append(problems, fmt.Sprintf("class %s: %.2f stalls/session > budget %.2f", cs.Name, per, sc.SLO.MaxStallsPerSession))
			}
		}
		if sc.SLO.FreshnessP99Ms > 0 && cs.LiveSegments > 0 {
			if p99 := cs.BehindLiveP99Sec * 1000; p99 > float64(sc.SLO.FreshnessP99Ms) {
				problems = append(problems, fmt.Sprintf("class %s: behind-live p99 %.0fms > budget %dms", cs.Name, p99, sc.SLO.FreshnessP99Ms))
			}
		}
	}

	return GateResult{Passed: len(problems) == 0, Problems: problems}
}
