// Package chaos is the fault-injection harness for the EVR serving path:
// deterministic, seeded fault schedules — per-client bandwidth, loss, and
// jitter; server-side slow shards and re-ingests; mid-run shard kills and
// restarts — driven against a live or VOD serving stack under a
// heterogeneous client fleet, with survival gates that decide pass/fail
// from the load report: zero checksum divergence, bounded failures, and
// freshness/stall SLOs.
//
// Everything is derived from a Scenario (a JSON-serializable document) and
// its seed: two runs of the same scenario produce identical fault
// schedules and identical per-user displayed-frame checksums, which is
// what lets a chaos run double as a regression gate.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"evr/internal/fixed"
	"evr/internal/loadgen"
	"evr/internal/netsim"
	"evr/internal/scene"
)

// Fault types.
const (
	FaultKillShard    = "kill-shard"    // take a shard off the ring at a pass start
	FaultRestartShard = "restart-shard" // bring a killed shard back at a pass start
	FaultSlowShard    = "slow-shard"    // add synthetic store latency to a shard
	FaultReingest     = "reingest"      // republish a VOD video mid-run
	FaultDropPublish  = "drop-publish"  // hold a live segment past its due time
)

// Scenario is one chaos run: the serving topology, the live stream, the
// client fleet, the seeded fault schedule, and the survival SLOs.
type Scenario struct {
	Name string `json:"name"`
	// Seed drives every pseudo-random decision (loss, jitter). Two runs
	// with the same seed produce identical fault schedules.
	Seed   int64 `json:"seed"`
	Passes int   `json:"passes"`
	// Segments bounds each playback; 0 = all segments.
	Segments int `json:"segments,omitempty"`
	// Width is the panoramic ingest width (0 = 192; height = width/2).
	Width int `json:"width,omitempty"`
	// ViewportScale shrinks rendered viewports (0 = player default).
	ViewportScale int `json:"viewportScale,omitempty"`
	// Shards is the serving replica count; 0 or 1 = a single unsharded
	// service (shard faults then require ≥ 2).
	Shards int `json:"shards,omitempty"`
	// EdgeCacheMiB / RespCacheMiB bound the router edge cache and the
	// per-shard response caches (0 = defaults).
	EdgeCacheMiB int `json:"edgeCacheMiB,omitempty"`
	RespCacheMiB int `json:"respCacheMiB,omitempty"`
	// Live, when set, ingests one video on a live schedule while serving.
	Live   *LiveSpec `json:"live,omitempty"`
	Fleet  []Class   `json:"fleet"`
	Faults []Fault   `json:"faults,omitempty"`
	SLO    SLO       `json:"slo"`
}

// LiveSpec configures the live stream of a scenario.
type LiveSpec struct {
	// Video names the catalog video ingested live (orig-only).
	Video string `json:"video"`
	// IntervalMs is the wall-clock publish cadence (0 = content time).
	IntervalMs int `json:"intervalMs,omitempty"`
	// QueueDepth bounds the producer→publisher pipeline (0 = 2).
	QueueDepth int `json:"queueDepth,omitempty"`
}

// Class is one heterogeneous-fleet client class plus its injected network
// profile.
type Class struct {
	Name  string `json:"name"`
	Users int    `json:"users"`
	Video string `json:"video"`
	// Projection picks the ingest projection for this class's video:
	// "erp" (default), "cmp", or "eac". Classes sharing a video must
	// share a projection — a video is ingested exactly once.
	Projection string `json:"projection,omitempty"`
	// Delivery is the loadgen class delivery mode: "", "fov", "tiled",
	// "orig", or "policy".
	Delivery string `json:"delivery,omitempty"`
	// HAR renders FOV misses on the PTE; PTETotalBits/PTEIntBits override
	// the fixed-point format (both zero = default Q28.10).
	HAR          bool `json:"har,omitempty"`
	PTETotalBits int  `json:"pteTotalBits,omitempty"`
	PTEIntBits   int  `json:"pteIntBits,omitempty"`
	// CacheSegments bounds the client segment cache (0 = default).
	CacheSegments int `json:"cacheSegments,omitempty"`
	// Link names the netsim link class injected on this class's wire
	// (delay, loss, jitter) and budgeted against by tiled delivery.
	Link string `json:"link,omitempty"`
	// LinkTrace, when non-empty, varies the link per segment index
	// (cyclic) instead of holding Link constant.
	LinkTrace []string `json:"linkTrace,omitempty"`
	// Loss adds packet loss on top of the link class's own loss rate
	// (the larger of the two applies). In [0, 1).
	Loss float64 `json:"loss,omitempty"`
}

// Fault is one scheduled fault.
type Fault struct {
	Type string `json:"type"`
	// Pass schedules pass-scoped faults (kill/restart/slow/reingest):
	// they apply just before that pass's sessions launch.
	Pass int `json:"pass,omitempty"`
	// Shard targets shard faults.
	Shard int `json:"shard,omitempty"`
	// Video targets reingest faults.
	Video string `json:"video,omitempty"`
	// Seg and Intervals configure drop-publish: the live publisher holds
	// segment Seg for Intervals extra publish intervals.
	Seg       int `json:"seg,omitempty"`
	Intervals int `json:"intervals,omitempty"`
	// DelayMs is the synthetic store latency slow-shard injects.
	DelayMs int `json:"delayMs,omitempty"`
}

// SLO is the survival gate: the run passes only if every bound holds (and
// per-user checksums never diverge across passes — that gate is implicit).
type SLO struct {
	// MaxFailures bounds failed sessions across the whole run.
	MaxFailures int `json:"maxFailures"`
	// MaxStallsPerSession bounds modeled rebuffer events per successful
	// session, per class (0 = not gated).
	MaxStallsPerSession float64 `json:"maxStallsPerSession,omitempty"`
	// FreshnessP99Ms bounds each live class's p99 time-behind-live
	// (0 = not gated).
	FreshnessP99Ms int `json:"freshnessP99Ms,omitempty"`
}

var projections = map[string]bool{"": true, "erp": true, "cmp": true, "eac": true}
var deliveries = map[string]bool{"": true, "fov": true, "tiled": true, "orig": true, "policy": true}

// Validate rejects structurally unusable scenarios.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("chaos: scenario name required")
	}
	if sc.Passes < 1 {
		return fmt.Errorf("chaos: passes %d must be ≥ 1", sc.Passes)
	}
	if sc.Segments < 0 {
		return fmt.Errorf("chaos: segments %d must be ≥ 0", sc.Segments)
	}
	if sc.Width != 0 && (sc.Width < 16 || sc.Width > 4096) {
		return fmt.Errorf("chaos: width %d out of range [16,4096]", sc.Width)
	}
	if sc.ViewportScale < 0 {
		return fmt.Errorf("chaos: viewportScale %d must be ≥ 0", sc.ViewportScale)
	}
	if sc.Shards < 0 || sc.Shards > 64 {
		return fmt.Errorf("chaos: shards %d out of range [0,64]", sc.Shards)
	}
	if sc.EdgeCacheMiB < 0 || sc.RespCacheMiB < 0 {
		return fmt.Errorf("chaos: cache budgets must be ≥ 0")
	}
	if len(sc.Fleet) == 0 {
		return fmt.Errorf("chaos: fleet must have at least one class")
	}
	liveVideo := ""
	if sc.Live != nil {
		if sc.Live.Video == "" {
			return fmt.Errorf("chaos: live.video required")
		}
		if _, ok := scene.ByName(sc.Live.Video); !ok {
			return fmt.Errorf("chaos: live.video %q not in the catalog", sc.Live.Video)
		}
		if sc.Live.IntervalMs < 0 || sc.Live.QueueDepth < 0 {
			return fmt.Errorf("chaos: live interval and queue depth must be ≥ 0")
		}
		liveVideo = sc.Live.Video
	}
	seen := make(map[string]bool)
	videoProj := make(map[string]string)
	for i := range sc.Fleet {
		c := &sc.Fleet[i]
		if c.Name == "" {
			return fmt.Errorf("chaos: fleet[%d]: name required", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("chaos: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Users < 1 {
			return fmt.Errorf("chaos: class %q: users %d must be ≥ 1", c.Name, c.Users)
		}
		if _, ok := scene.ByName(c.Video); !ok {
			return fmt.Errorf("chaos: class %q: video %q not in the catalog", c.Name, c.Video)
		}
		if !projections[c.Projection] {
			return fmt.Errorf("chaos: class %q: unknown projection %q", c.Name, c.Projection)
		}
		if !deliveries[c.Delivery] {
			return fmt.Errorf("chaos: class %q: unknown delivery %q", c.Name, c.Delivery)
		}
		if prev, ok := videoProj[c.Video]; ok && prev != c.Projection {
			return fmt.Errorf("chaos: video %q ingested with both projection %q and %q — classes sharing a video must share its projection", c.Video, prev, c.Projection)
		}
		videoProj[c.Video] = c.Projection
		if c.Video == liveVideo && (c.Delivery == "tiled" || c.Delivery == "policy") {
			return fmt.Errorf("chaos: class %q: live video %q is orig-only, delivery %q needs tile streams", c.Name, c.Video, c.Delivery)
		}
		if (c.PTETotalBits != 0) != (c.PTEIntBits != 0) {
			return fmt.Errorf("chaos: class %q: pteTotalBits and pteIntBits must be set together", c.Name)
		}
		if c.PTETotalBits != 0 {
			f := fixed.Format{TotalBits: c.PTETotalBits, IntBits: c.PTEIntBits}
			if err := f.Validate(); err != nil {
				return fmt.Errorf("chaos: class %q: %w", c.Name, err)
			}
		}
		if c.CacheSegments < 0 {
			return fmt.Errorf("chaos: class %q: cacheSegments %d must be ≥ 0", c.Name, c.CacheSegments)
		}
		if c.Link != "" {
			if _, ok := netsim.ClassByName(c.Link); !ok {
				return fmt.Errorf("chaos: class %q: unknown link class %q", c.Name, c.Link)
			}
		}
		for _, name := range c.LinkTrace {
			if _, ok := netsim.ClassByName(name); !ok {
				return fmt.Errorf("chaos: class %q: unknown link class %q in trace", c.Name, name)
			}
		}
		if c.Loss < 0 || c.Loss >= 1 {
			return fmt.Errorf("chaos: class %q: loss %v out of range [0,1)", c.Name, c.Loss)
		}
	}
	for i := range sc.Faults {
		f := &sc.Faults[i]
		switch f.Type {
		case FaultKillShard, FaultRestartShard, FaultSlowShard:
			if sc.Shards < 2 {
				return fmt.Errorf("chaos: fault %d (%s): needs shards ≥ 2", i, f.Type)
			}
			if f.Shard < 0 || f.Shard >= sc.Shards {
				return fmt.Errorf("chaos: fault %d (%s): shard %d out of range [0,%d)", i, f.Type, f.Shard, sc.Shards)
			}
			if f.Pass < 1 || f.Pass > sc.Passes {
				return fmt.Errorf("chaos: fault %d (%s): pass %d out of range [1,%d]", i, f.Type, f.Pass, sc.Passes)
			}
			if f.Type == FaultSlowShard && f.DelayMs <= 0 {
				return fmt.Errorf("chaos: fault %d (slow-shard): delayMs %d must be > 0", i, f.DelayMs)
			}
		case FaultReingest:
			if f.Pass < 1 || f.Pass > sc.Passes {
				return fmt.Errorf("chaos: fault %d (reingest): pass %d out of range [1,%d]", i, f.Pass, sc.Passes)
			}
			if _, ok := videoProj[f.Video]; !ok {
				return fmt.Errorf("chaos: fault %d (reingest): video %q not played by any class", i, f.Video)
			}
			if f.Video == liveVideo {
				return fmt.Errorf("chaos: fault %d: cannot reingest the live video %q (use drop-publish)", i, f.Video)
			}
		case FaultDropPublish:
			if sc.Live == nil {
				return fmt.Errorf("chaos: fault %d (drop-publish): scenario has no live stream", i)
			}
			if f.Seg < 0 {
				return fmt.Errorf("chaos: fault %d (drop-publish): seg %d must be ≥ 0", i, f.Seg)
			}
			if f.Intervals < 1 {
				return fmt.Errorf("chaos: fault %d (drop-publish): intervals %d must be ≥ 1", i, f.Intervals)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown type %q", i, f.Type)
		}
	}
	if sc.SLO.MaxFailures < 0 || sc.SLO.MaxStallsPerSession < 0 || sc.SLO.FreshnessP99Ms < 0 {
		return fmt.Errorf("chaos: SLO bounds must be ≥ 0")
	}
	return nil
}

// FleetSpecs translates the scenario fleet into loadgen class specs.
func (sc *Scenario) FleetSpecs() []loadgen.ClassSpec {
	out := make([]loadgen.ClassSpec, len(sc.Fleet))
	for i, c := range sc.Fleet {
		cs := loadgen.ClassSpec{
			Name:          c.Name,
			Users:         c.Users,
			Video:         c.Video,
			Delivery:      c.Delivery,
			UseHAR:        c.HAR,
			CacheSegments: c.CacheSegments,
			Link:          c.Link,
		}
		if c.PTETotalBits != 0 {
			cs.PTEFormat = fixed.Format{TotalBits: c.PTETotalBits, IntBits: c.PTEIntBits}
		}
		out[i] = cs
	}
	return out
}

// Load reads a scenario: a builtin name first, then a JSON file path.
func Load(nameOrPath string) (*Scenario, error) {
	if sc, ok := Builtin(nameOrPath); ok {
		return sc, nil
	}
	raw, err := os.ReadFile(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("chaos: scenario %q is neither a builtin (%v) nor a readable file: %w", nameOrPath, BuiltinNames(), err)
	}
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		return nil, fmt.Errorf("chaos: parsing %s: %w", nameOrPath, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}
