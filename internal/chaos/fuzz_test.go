package chaos

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzChaosScenario fuzzes the scenario document path the -chaos CLI
// trusts: any JSON that decodes into a Scenario and validates must
// re-encode, and the re-encoded form must be a fixpoint (decode → encode →
// decode → encode is byte-identical) — a scenario file has one canonical
// encoding, so saving and re-running a scenario can never drift. Nothing
// in the pipeline may panic regardless of input.
func FuzzChaosScenario(f *testing.F) {
	for _, name := range BuiltinNames() {
		sc, _ := Builtin(name)
		seed, err := json.Marshal(sc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","passes":1,"fleet":[{"name":"a","users":1,"video":"RS"}],"slo":{"maxFailures":0}}`))
	f.Add([]byte(`{"name":"x","passes":-1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"faults":[{"type":"kill-shard","shard":999}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var sc Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			return // invalid scenarios just need to not panic
		}
		enc, err := json.Marshal(&sc)
		if err != nil {
			t.Fatalf("valid scenario failed to encode: %v", err)
		}
		var sc2 Scenario
		if err := json.Unmarshal(enc, &sc2); err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		if err := sc2.Validate(); err != nil {
			t.Fatalf("canonical encoding does not validate: %v", err)
		}
		enc2, err := json.Marshal(&sc2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixpoint:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
