package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"evr/internal/loadgen"
)

func validScenario() *Scenario {
	sc, ok := Builtin("ci-smoke")
	if !ok {
		panic("ci-smoke builtin missing")
	}
	return sc
}

func TestBuiltinsValidate(t *testing.T) {
	for _, name := range BuiltinNames() {
		sc, ok := Builtin(name)
		if !ok {
			t.Fatalf("Builtin(%q) missing", name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "name required"},
		{"zero passes", func(s *Scenario) { s.Passes = 0 }, "passes"},
		{"bad width", func(s *Scenario) { s.Width = 8 }, "width"},
		{"negative shards", func(s *Scenario) { s.Shards = -1 }, "shards"},
		{"empty fleet", func(s *Scenario) { s.Fleet = nil }, "fleet"},
		{"unknown video", func(s *Scenario) { s.Fleet[0].Video = "nope" }, "catalog"},
		{"unknown projection", func(s *Scenario) { s.Fleet[0].Projection = "fisheye" }, "projection"},
		{"unknown delivery", func(s *Scenario) { s.Fleet[0].Delivery = "teleport" }, "delivery"},
		{"dup class", func(s *Scenario) { s.Fleet[1].Name = s.Fleet[0].Name }, "duplicate"},
		{"split projection", func(s *Scenario) {
			s.Fleet[1].Video = s.Fleet[0].Video
			s.Fleet[1].Projection = "cmp"
			s.Fleet[0].Projection = "erp"
		}, "share its projection"},
		{"tiled live", func(s *Scenario) { s.Fleet[0].Delivery = "policy" }, "orig-only"},
		{"half pte", func(s *Scenario) { s.Fleet[0].PTETotalBits = 20 }, "together"},
		{"bad pte", func(s *Scenario) { s.Fleet[0].PTETotalBits = 99; s.Fleet[0].PTEIntBits = 4 }, "total bits"},
		{"unknown link", func(s *Scenario) { s.Fleet[0].Link = "carrier-pigeon" }, "link class"},
		{"loss one", func(s *Scenario) { s.Fleet[0].Loss = 1 }, "loss"},
		{"shard fault on single", func(s *Scenario) { s.Shards = 1 }, "shards ≥ 2"},
		{"fault shard range", func(s *Scenario) { s.Faults[0].Shard = 7 }, "out of range"},
		{"fault pass range", func(s *Scenario) { s.Faults[0].Pass = 9 }, "out of range"},
		{"slow shard no delay", func(s *Scenario) { s.Faults[1].DelayMs = 0 }, "delayMs"},
		{"reingest live", func(s *Scenario) { s.Faults[3].Video = "RS" }, "live video"},
		{"reingest unplayed", func(s *Scenario) { s.Faults[3].Video = "Rhino" }, "not played"},
		{"drop publish no live", func(s *Scenario) { s.Live = nil }, ""},
		{"unknown fault", func(s *Scenario) { s.Faults[0].Type = "meteor" }, "unknown type"},
		{"negative slo", func(s *Scenario) { s.SLO.MaxFailures = -1 }, "SLO"},
	}
	for _, tc := range cases {
		sc := validScenario()
		tc.mut(sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a broken scenario", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := validScenario().Validate(); err != nil {
		t.Fatalf("unmutated scenario must validate: %v", err)
	}
}

// TestFaultScheduleDeterministic drives two engines from the same scenario
// and asserts identical loss decisions and identical schedule logs.
func TestFaultScheduleDeterministic(t *testing.T) {
	sc := validScenario()
	decisions := func() []string {
		e := NewEngine(sc)
		rt := e.WrapTransport(4, "vod-cmp-lossy", failBase{})
		ft, ok := rt.(*faultTransport)
		if !ok {
			t.Fatal("lossy class should get a fault transport")
		}
		var out []string
		for seg := 0; seg < 4; seg++ {
			for attempt := 0; attempt < 3; attempt++ {
				url := "/v/Paris/orig/" + string(rune('0'+seg))
				if hashFrac(ft.seed, url, attempt, 0x10550000) < 0.05 {
					out = append(out, url)
				}
			}
		}
		return out
	}
	a, b := decisions(), decisions()
	if len(a) != len(b) {
		t.Fatalf("loss schedule differs across engines: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss schedule differs at %d: %v vs %v", i, a, b)
		}
	}
}

// failBase is a RoundTripper that must never be reached in unit tests.
type failBase struct{}

func (failBase) RoundTrip(*http.Request) (*http.Response, error) {
	return nil, errors.New("unit test: base transport should not be hit")
}

// TestWrapTransportPassthrough: a class with no network profile keeps the
// base transport untouched.
func TestWrapTransportPassthrough(t *testing.T) {
	sc := validScenario()
	e := NewEngine(sc)
	base := failBase{}
	if got := e.WrapTransport(0, "live-erp", base); got == base {
		t.Fatal("live-erp names a wifi300 link; expected a fault transport")
	}
	if got := e.WrapTransport(0, "no-such-class", base); got != http.RoundTripper(base) {
		t.Fatal("unknown class must keep the base transport")
	}
}

func TestSegFromPath(t *testing.T) {
	cases := map[string]int{
		"/v/RS/orig/3":        3,
		"/v/RS/fov/2/1":       2,
		"/v/RS/fovmeta/5/0":   5,
		"/v/RS/tile/7/3/1":    7,
		"/v/RS/tilelow/4":     4,
		"/v/RS/manifest":      -1,
		"/videos":             -1,
		"/metrics":            -1,
		"/v/RS/orig/x":        -1,
		"/v/RS/unknown/3":     -1,
		"/v/RS/orig/-2":       -1,
		"/v/Paris/orig/0/huh": 0,
	}
	for path, want := range cases {
		if got := segFromPath(path); got != want {
			t.Errorf("segFromPath(%q) = %d, want %d", path, got, want)
		}
	}
}

// TestFaultTransportLossDeterministic asserts the injected loss pattern is
// a pure function of (seed, url, attempt) — same across transports and
// after resetAttempts.
func TestFaultTransportLossDeterministic(t *testing.T) {
	cls := &Class{Name: "c", Users: 1, Video: "RS", Loss: 0.5}
	mk := func() *faultTransport { return newFaultTransport(okBase{}, 1234, cls) }
	pattern := func(ft *faultTransport) []bool {
		var out []bool
		for i := 0; i < 20; i++ {
			req, _ := http.NewRequest(http.MethodGet, "http://x/v/RS/orig/0", nil)
			_, err := ft.RoundTrip(req)
			out = append(out, err != nil)
		}
		return out
	}
	a := pattern(mk())
	b := pattern(mk())
	lost := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss pattern diverged at attempt %d", i)
		}
		if a[i] {
			lost++
		}
	}
	if lost == 0 || lost == len(a) {
		t.Fatalf("with 50%% loss over %d attempts, got %d losses — hash looks degenerate", len(a), lost)
	}
	ft := mk()
	first := pattern(ft)
	ft.resetAttempts()
	second := pattern(ft)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("resetAttempts did not replay the schedule (attempt %d)", i)
		}
	}
}

// okBase returns an empty 200 for any request.
type okBase struct{}

func (okBase) RoundTrip(*http.Request) (*http.Response, error) {
	return &http.Response{StatusCode: http.StatusOK, Body: io.NopCloser(bytes.NewReader(nil)), Header: make(http.Header)}, nil
}

func TestEvaluateGates(t *testing.T) {
	sc := validScenario()
	good := &loadgen.Report{
		Results: []loadgen.UserResult{
			{User: 0, Pass: 1, Checksum: 11}, {User: 0, Pass: 2, Checksum: 11},
			{User: 1, Pass: 1, Checksum: 22}, {User: 1, Pass: 2, Checksum: 22},
		},
		Classes: []loadgen.ClassStats{{Name: "live-erp", Sessions: 4, LiveSegments: 8, BehindLiveP99Sec: 0.4}},
	}
	if res := Evaluate(sc, good); !res.Passed {
		t.Fatalf("clean report must pass, got %v", res.Problems)
	}

	diverged := &loadgen.Report{Results: []loadgen.UserResult{
		{User: 0, Pass: 1, Checksum: 11}, {User: 0, Pass: 2, Checksum: 12},
	}}
	if res := Evaluate(sc, diverged); res.Passed {
		t.Fatal("checksum divergence must fail the gate")
	}

	failed := &loadgen.Report{Results: []loadgen.UserResult{
		{User: 0, Pass: 1, Err: errors.New("boom")},
	}}
	if res := Evaluate(sc, failed); res.Passed {
		t.Fatal("session failure beyond budget must fail the gate")
	}

	stale := &loadgen.Report{Classes: []loadgen.ClassStats{
		{Name: "live-erp", Sessions: 2, LiveSegments: 4, BehindLiveP99Sec: 99},
	}}
	if res := Evaluate(sc, stale); res.Passed {
		t.Fatal("freshness SLO violation must fail the gate")
	}

	sc.SLO.MaxStallsPerSession = 0.5
	stalled := &loadgen.Report{Classes: []loadgen.ClassStats{
		{Name: "vod-cmp-lossy", Sessions: 2, Stalls: 9},
	}}
	if res := Evaluate(sc, stalled); res.Passed {
		t.Fatal("stall SLO violation must fail the gate")
	}
}

func TestLoadBuiltinAndJSON(t *testing.T) {
	sc, err := Load("ci-smoke")
	if err != nil || sc.Name != "ci-smoke" {
		t.Fatalf("Load builtin: %v", err)
	}
	raw, err := json.Marshal(validScenario())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/sc.json"
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sc2, err := Load(path)
	if err != nil {
		t.Fatalf("Load JSON: %v", err)
	}
	if sc2.Name != sc.Name || len(sc2.Fleet) != len(sc.Fleet) {
		t.Fatal("JSON round trip lost scenario content")
	}
	if _, err := Load("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario must error")
	}
}
