package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"evr/internal/netsim"
)

// maxInjectedDelay clamps per-request synthetic latency so a scenario with
// a slow link and a huge payload degrades the run, not the CI budget.
const maxInjectedDelay = 2 * time.Second

// lossError is the synthetic transport failure injected for a lost
// request. The client fetch layer classifies transport errors as
// transient, so a loss becomes a retry — exactly what a dropped TCP
// connection does.
type lossError struct{ url string }

func (e *lossError) Error() string { return fmt.Sprintf("chaos: injected loss on %s", e.url) }

// faultTransport injects one client's network profile under the load
// generator's timing layer: per-request bandwidth/RTT delay, seeded
// deterministic loss, and seeded jitter. Determinism contract: the fault
// decision for a request depends only on (scenario seed, user, URL path,
// per-URL attempt number within the pass) — never on wall-clock time or
// goroutine interleaving — so two same-seed runs inject identical
// schedules.
type faultTransport struct {
	base  http.RoundTripper
	seed  uint64
	loss  float64
	link  netsim.Link
	trace netsim.Trace // non-empty overrides link per segment index

	mu       sync.Mutex
	attempts map[string]int
}

func newFaultTransport(base http.RoundTripper, seed uint64, class *Class) *faultTransport {
	t := &faultTransport{
		base:     base,
		seed:     seed,
		loss:     class.Loss,
		link:     netsim.WiFi300(),
		attempts: make(map[string]int),
	}
	if class.Link != "" {
		t.link, _ = netsim.ClassByName(class.Link)
	}
	if len(class.LinkTrace) > 0 {
		steps := make([]netsim.Link, len(class.LinkTrace))
		for i, name := range class.LinkTrace {
			steps[i], _ = netsim.ClassByName(name)
		}
		t.trace = netsim.Trace{Steps: steps}
	}
	return t
}

// resetAttempts starts a fresh per-URL attempt sequence — called at every
// pass start so each pass sees the identical fault schedule (the property
// the cross-pass checksum gate leans on).
func (t *faultTransport) resetAttempts() {
	t.mu.Lock()
	t.attempts = make(map[string]int)
	t.mu.Unlock()
}

// segFromPath extracts the segment index from a serving path
// (/v/{video}/{kind}/{seg}[/...]), -1 when the path has none (manifest,
// catalog, metrics).
func segFromPath(path string) int {
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(parts) < 4 || parts[0] != "v" {
		return -1
	}
	switch parts[2] {
	case "orig", "fov", "fovmeta", "tile", "tilelow":
		if n, err := strconv.Atoi(parts[3]); err == nil && n >= 0 {
			return n
		}
	}
	return -1
}

// hashFrac maps (seed, url, attempt) to a uniform [0,1) fraction via a
// splitmix64-style mix — the deterministic coin every fault decision
// flips.
func hashFrac(seed uint64, url string, attempt int, salt uint64) float64 {
	h := seed ^ salt
	for i := 0; i < len(url); i++ {
		h ^= uint64(url[i])
		h *= 0x100000001b3
	}
	h ^= uint64(attempt) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	path := req.URL.Path
	t.mu.Lock()
	attempt := t.attempts[path]
	t.attempts[path] = attempt + 1
	t.mu.Unlock()

	link := t.link
	if seg := segFromPath(path); seg >= 0 && len(t.trace.Steps) > 0 {
		link = t.trace.At(seg)
	}
	loss := t.loss
	if link.LossRate > loss {
		loss = link.LossRate
	}
	if loss > 0 && hashFrac(t.seed, path, attempt, 0x10550000) < loss {
		return nil, &lossError{url: path}
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	// Read the body up front so the injected delay covers the transfer
	// the link would have taken, then replay it to the caller.
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		return nil, err
	}
	d := time.Duration(link.RTTSeconds * float64(time.Second))
	if link.BandwidthBps > 0 {
		d += time.Duration(float64(len(body)) * 8 / link.BandwidthBps * float64(time.Second))
	}
	if link.JitterSeconds > 0 {
		frac := hashFrac(t.seed, path, attempt, 0x71773300)
		d += time.Duration(frac * link.JitterSeconds * float64(time.Second))
	}
	if d > maxInjectedDelay {
		d = maxInjectedDelay
	}
	if d > 0 {
		time.Sleep(d)
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	return resp, nil
}
