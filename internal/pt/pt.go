// Package pt implements the projective transformation (PT) that dominates
// the "VR tax" (§2, §6.1 of the paper): producing the planar FOV frame a
// user actually sees from a full 360° frame stored in a spherical-to-planar
// projection.
//
// For each output pixel P(i, j) the algorithm runs three stages:
//
//  1. perspective update — find the point P′ on the viewing sphere that
//     corresponds to P under the current head orientation;
//  2. mapping — project P′ to the coordinates P″(u, v) in the input frame
//     under the video's projection method (ERP/CMP/EAC);
//  3. filtering — sample the input frame around P″ (nearest neighbor or
//     bilinear) to produce the 24-bit RGB value of P.
//
// This package is the double-precision reference implementation — the
// behaviour the GPU texture-mapping path computes. The PTE accelerator
// (package pte) implements the identical pipeline in fixed point; Fig. 11
// compares the two.
package pt

import (
	"fmt"
	"math"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/projection"
)

// Filter selects the pixel reconstruction function of the filtering stage.
type Filter int

const (
	// Nearest picks the nearest input pixel.
	Nearest Filter = iota
	// Bilinear blends the four surrounding input pixels.
	Bilinear
)

// String implements fmt.Stringer.
func (f Filter) String() string {
	switch f {
	case Nearest:
		return "nearest"
	case Bilinear:
		return "bilinear"
	default:
		return fmt.Sprintf("Filter(%d)", int(f))
	}
}

// Config fixes the parameters of a projective transformation: the input
// video's projection method, the reconstruction filter, and the output
// viewport (FOV size and display resolution). These are the eight per-pixel
// algorithm parameters of §6.1 in aggregate form.
type Config struct {
	Projection projection.Method
	Filter     Filter
	Viewport   projection.Viewport
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Viewport.Width <= 0 || c.Viewport.Height <= 0 {
		return fmt.Errorf("pt: viewport %dx%d must be positive", c.Viewport.Width, c.Viewport.Height)
	}
	if c.Viewport.FOVX <= 0 || c.Viewport.FOVX >= math.Pi || c.Viewport.FOVY <= 0 || c.Viewport.FOVY >= math.Pi {
		return fmt.Errorf("pt: FOV %v x %v rad out of (0, π)", c.Viewport.FOVX, c.Viewport.FOVY)
	}
	switch c.Projection {
	case projection.ERP, projection.CMP, projection.EAC:
	default:
		return fmt.Errorf("pt: unknown projection %v", c.Projection)
	}
	switch c.Filter {
	case Nearest, Bilinear:
	default:
		return fmt.Errorf("pt: unknown filter %v", c.Filter)
	}
	return nil
}

// MapPixel runs the perspective-update and mapping stages for output pixel
// (i, j): it returns the input-frame coordinates (u, v) in pixels (not yet
// normalized to integers — the filtering stage decides how to sample). Only
// the input frame's dimensions matter here, so the signature takes them
// directly; hot loops should build a Mapper once per frame instead of
// calling this per pixel.
func (c Config) MapPixel(o geom.Orientation, fullW, fullH, i, j int) (u, v float64) {
	m := c.NewMapper(o, fullW, fullH)
	return m.Map(i, j)
}

// Mapper holds the per-frame constants of the perspective-update and mapping
// stages: the head rotation matrix, the FOV tangents, and the input-frame
// scale factors. These depend only on (Config, Orientation, input size), so
// a render computes them once instead of re-deriving them per pixel. Map is
// a pure function of (i, j); a Mapper may be shared by concurrent workers.
type Mapper struct {
	proj         projection.Method
	mat          geom.Mat3
	tx, ty       float64
	vpW, vpH     float64
	fullW, fullH float64
}

// NewMapper precomputes the per-frame mapping state for head orientation o
// and an input frame of the given dimensions.
func (c Config) NewMapper(o geom.Orientation, fullW, fullH int) *Mapper {
	return &Mapper{
		proj:  c.Projection,
		mat:   o.Matrix(),
		tx:    math.Tan(c.Viewport.FOVX / 2),
		ty:    math.Tan(c.Viewport.FOVY / 2),
		vpW:   float64(c.Viewport.Width),
		vpH:   float64(c.Viewport.Height),
		fullW: float64(fullW),
		fullH: float64(fullH),
	}
}

// Map returns the input-frame pixel coordinates for output pixel (i, j).
// It performs the exact float operations of Viewport.Ray + ToPlane, so the
// result is bit-identical to the per-pixel MapPixel path.
func (m *Mapper) Map(i, j int) (u, v float64) {
	px := (2*(float64(i)+0.5)/m.vpW - 1) * m.tx
	py := (1 - 2*(float64(j)+0.5)/m.vpH) * m.ty
	dir := m.mat.Apply(geom.Vec3{X: px, Y: py, Z: 1}).Normalize()
	nu, nv := projection.ToPlane(m.proj, dir)
	// Map normalized coords to continuous pixel coordinates such that
	// nu=0 → -0.5 (left edge) and nu=1 → W-0.5 (right edge), i.e. pixel
	// centers sit at integer coordinates.
	return nu*m.fullW - 0.5, nv*m.fullH - 0.5
}

// Sample runs the filtering stage at input coordinates (u, v). ERP input
// wraps in longitude — its left and right edges are adjacent on the sphere —
// so samples crossing the ±180° seam blend the opposite edge; the cubemap
// projections keep the clamped border policy of their face layout.
func (c Config) Sample(full *frame.Frame, u, v float64) (r, g, b byte) {
	if c.Projection == projection.ERP {
		if c.Filter == Bilinear {
			return full.BilinearAtWrapX(u, v)
		}
		return full.AtWrapX(int(math.Round(u)), int(math.Round(v)))
	}
	switch c.Filter {
	case Bilinear:
		return full.BilinearAt(u, v)
	default:
		return full.At(int(math.Round(u)), int(math.Round(v)))
	}
}

// Render executes the full PT for one frame: it produces the FOV frame for
// head orientation o from the full panoramic frame. This is the reference
// implementation of the operation the paper measures at ~40% of VR compute
// and memory energy (Fig. 3b). It panics on an invalid configuration; use
// RenderChecked to get the error instead.
func Render(c Config, full *frame.Frame, o geom.Orientation) *frame.Frame {
	out, err := RenderChecked(c, full, o)
	if err != nil {
		panic(err)
	}
	return out
}

// RenderChecked is Render with up-front validation: it reports an invalid
// configuration or input frame as an error instead of panicking mid-render.
func RenderChecked(c Config, full *frame.Frame, o geom.Orientation) (*frame.Frame, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if full == nil || full.W <= 0 || full.H <= 0 {
		return nil, fmt.Errorf("pt: input frame must be non-empty")
	}
	out := frame.New(c.Viewport.Width, c.Viewport.Height)
	c.renderRows(full, o, out, 0, c.Viewport.Height)
	return out, nil
}

// renderRows renders output rows [j0, j1) into out. Rows are independent, so
// disjoint row bands of the same output frame may render concurrently.
func (c Config) renderRows(full *frame.Frame, o geom.Orientation, out *frame.Frame, j0, j1 int) {
	m := c.NewMapper(o, full.W, full.H)
	for j := j0; j < j1; j++ {
		for i := 0; i < c.Viewport.Width; i++ {
			u, v := m.Map(i, j)
			r, g, b := c.Sample(full, u, v)
			out.Set(i, j, r, g, b)
		}
	}
}

// Stats describes the arithmetic work of one PT frame, used by the energy
// models: the pixel count and the number of input-pixel fetches.
type Stats struct {
	OutputPixels int
	Fetches      int
}

// Cost returns the work statistics for one rendered frame under c.
func (c Config) Cost() Stats {
	px := c.Viewport.Pixels()
	fetch := px
	if c.Filter == Bilinear {
		fetch = 4 * px
	}
	return Stats{OutputPixels: px, Fetches: fetch}
}
