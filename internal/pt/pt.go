// Package pt implements the projective transformation (PT) that dominates
// the "VR tax" (§2, §6.1 of the paper): producing the planar FOV frame a
// user actually sees from a full 360° frame stored in a spherical-to-planar
// projection.
//
// For each output pixel P(i, j) the algorithm runs three stages:
//
//  1. perspective update — find the point P′ on the viewing sphere that
//     corresponds to P under the current head orientation;
//  2. mapping — project P′ to the coordinates P″(u, v) in the input frame
//     under the video's projection method (ERP/CMP/EAC);
//  3. filtering — sample the input frame around P″ (nearest neighbor or
//     bilinear) to produce the 24-bit RGB value of P.
//
// This package is the double-precision reference implementation — the
// behaviour the GPU texture-mapping path computes. The PTE accelerator
// (package pte) implements the identical pipeline in fixed point; Fig. 11
// compares the two.
package pt

import (
	"fmt"
	"math"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/projection"
)

// Filter selects the pixel reconstruction function of the filtering stage.
type Filter int

const (
	// Nearest picks the nearest input pixel.
	Nearest Filter = iota
	// Bilinear blends the four surrounding input pixels.
	Bilinear
)

// String implements fmt.Stringer.
func (f Filter) String() string {
	switch f {
	case Nearest:
		return "nearest"
	case Bilinear:
		return "bilinear"
	default:
		return fmt.Sprintf("Filter(%d)", int(f))
	}
}

// Config fixes the parameters of a projective transformation: the input
// video's projection method, the reconstruction filter, and the output
// viewport (FOV size and display resolution). These are the eight per-pixel
// algorithm parameters of §6.1 in aggregate form.
type Config struct {
	Projection projection.Method
	Filter     Filter
	Viewport   projection.Viewport
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Viewport.Width <= 0 || c.Viewport.Height <= 0 {
		return fmt.Errorf("pt: viewport %dx%d must be positive", c.Viewport.Width, c.Viewport.Height)
	}
	if c.Viewport.FOVX <= 0 || c.Viewport.FOVX >= math.Pi || c.Viewport.FOVY <= 0 || c.Viewport.FOVY >= math.Pi {
		return fmt.Errorf("pt: FOV %v x %v rad out of (0, π)", c.Viewport.FOVX, c.Viewport.FOVY)
	}
	switch c.Projection {
	case projection.ERP, projection.CMP, projection.EAC:
	default:
		return fmt.Errorf("pt: unknown projection %v", c.Projection)
	}
	switch c.Filter {
	case Nearest, Bilinear:
	default:
		return fmt.Errorf("pt: unknown filter %v", c.Filter)
	}
	return nil
}

// MapPixel runs the perspective-update and mapping stages for output pixel
// (i, j): it returns the input-frame coordinates (u, v) in pixels (not yet
// normalized to integers — the filtering stage decides how to sample).
func (c Config) MapPixel(o geom.Orientation, full *frame.Frame, i, j int) (u, v float64) {
	dir := c.Viewport.Ray(o, i, j)
	nu, nv := projection.ToPlane(c.Projection, dir)
	// Map normalized coords to continuous pixel coordinates such that
	// nu=0 → -0.5 (left edge) and nu=1 → W-0.5 (right edge), i.e. pixel
	// centers sit at integer coordinates.
	return nu*float64(full.W) - 0.5, nv*float64(full.H) - 0.5
}

// Sample runs the filtering stage at input coordinates (u, v).
func (c Config) Sample(full *frame.Frame, u, v float64) (r, g, b byte) {
	switch c.Filter {
	case Bilinear:
		return full.BilinearAt(u, v)
	default:
		return full.At(int(math.Round(u)), int(math.Round(v)))
	}
}

// Render executes the full PT for one frame: it produces the FOV frame for
// head orientation o from the full panoramic frame. This is the reference
// implementation of the operation the paper measures at ~40% of VR compute
// and memory energy (Fig. 3b).
func Render(c Config, full *frame.Frame, o geom.Orientation) *frame.Frame {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	out := frame.New(c.Viewport.Width, c.Viewport.Height)
	for j := 0; j < c.Viewport.Height; j++ {
		for i := 0; i < c.Viewport.Width; i++ {
			u, v := c.MapPixel(o, full, i, j)
			r, g, b := c.Sample(full, u, v)
			out.Set(i, j, r, g, b)
		}
	}
	return out
}

// Stats describes the arithmetic work of one PT frame, used by the energy
// models: the pixel count and the number of input-pixel fetches.
type Stats struct {
	OutputPixels int
	Fetches      int
}

// Cost returns the work statistics for one rendered frame under c.
func (c Config) Cost() Stats {
	px := c.Viewport.Pixels()
	fetch := px
	if c.Filter == Bilinear {
		fetch = 4 * px
	}
	return Stats{OutputPixels: px, Fetches: fetch}
}
