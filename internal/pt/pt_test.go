package pt

import (
	"math"
	"math/rand"
	"testing"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/projection"
)

func testViewport() projection.Viewport {
	return projection.Viewport{Width: 40, Height: 40, FOVX: geom.Radians(110), FOVY: geom.Radians(110)}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Projection: projection.ERP, Filter: Bilinear, Viewport: testViewport()}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Projection: projection.ERP, Viewport: projection.Viewport{Width: 0, Height: 10, FOVX: 1, FOVY: 1}},
		{Projection: projection.ERP, Viewport: projection.Viewport{Width: 10, Height: 10, FOVX: 0, FOVY: 1}},
		{Projection: projection.ERP, Viewport: projection.Viewport{Width: 10, Height: 10, FOVX: 1, FOVY: 4}},
		{Projection: projection.Method(9), Viewport: testViewport()},
		{Projection: projection.ERP, Filter: Filter(7), Viewport: testViewport()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestFilterString(t *testing.T) {
	if Nearest.String() != "nearest" || Bilinear.String() != "bilinear" {
		t.Error("filter names broken")
	}
}

// sphereFrame renders a full ERP frame where each pixel encodes its own
// direction: R = longitude band, G = latitude band. This gives PT output we
// can verify analytically.
func sphereFrame(w, h int) *frame.Frame {
	f := frame.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, byte(255*x/w), byte(255*y/h), 128)
		}
	}
	return f
}

func TestRenderCenterPixelLooksForward(t *testing.T) {
	full := sphereFrame(360, 180)
	for _, m := range projection.Methods {
		cfg := Config{Projection: m, Filter: Nearest, Viewport: testViewport()}
		o := geom.Orientation{Yaw: geom.Radians(30), Pitch: geom.Radians(10)}
		// Build the projection-specific full frame: encode direction color.
		fullM := frame.New(full.W, full.H)
		for y := 0; y < full.H; y++ {
			for x := 0; x < full.W; x++ {
				dir := projection.ToSphere(m, (float64(x)+0.5)/float64(full.W), (float64(y)+0.5)/float64(full.H))
				s := geom.FromCartesian(dir)
				fullM.Set(x, y, byte((s.Theta+math.Pi)/(2*math.Pi)*255), byte((math.Pi/2-s.Phi)/math.Pi*255), 0)
			}
		}
		out := Render(cfg, fullM, o)
		r, g, _ := out.At(cfg.Viewport.Width/2, cfg.Viewport.Height/2)
		wantR := byte((o.Yaw + math.Pi) / (2 * math.Pi) * 255)
		wantG := byte((math.Pi/2 - o.Pitch) / math.Pi * 255)
		if math.Abs(float64(r)-float64(wantR)) > 4 || math.Abs(float64(g)-float64(wantG)) > 4 {
			t.Errorf("%v: center pixel = (%d,%d), want ~(%d,%d)", m, r, g, wantR, wantG)
		}
	}
}

func TestRenderUniformFrameStaysUniform(t *testing.T) {
	full := frame.New(128, 64)
	full.Fill(37, 73, 110)
	for _, m := range projection.Methods {
		for _, flt := range []Filter{Nearest, Bilinear} {
			cfg := Config{Projection: m, Filter: flt, Viewport: testViewport()}
			out := Render(cfg, full, geom.Orientation{Yaw: 1.2, Pitch: -0.3})
			for i := 0; i < len(out.Pix); i += 3 {
				if out.Pix[i] != 37 || out.Pix[i+1] != 73 || out.Pix[i+2] != 110 {
					t.Fatalf("%v/%v: uniform input produced non-uniform output at %d", m, flt, i/3)
				}
			}
		}
	}
}

func TestRenderYawShiftsERPHorizontally(t *testing.T) {
	// With a horizontal gradient ERP frame, increasing yaw must increase
	// the sampled red channel at the center (until wraparound).
	full := sphereFrame(360, 180)
	cfg := Config{Projection: projection.ERP, Filter: Nearest, Viewport: testViewport()}
	var prev float64 = -1
	for yawDeg := -60; yawDeg <= 60; yawDeg += 30 {
		out := Render(cfg, full, geom.Orientation{Yaw: geom.Radians(float64(yawDeg))})
		r, _, _ := out.At(20, 20)
		if float64(r) <= prev {
			t.Fatalf("red channel not increasing with yaw: %d at %d°", r, yawDeg)
		}
		prev = float64(r)
	}
}

func TestBilinearSmootherThanNearest(t *testing.T) {
	// On a high-frequency checkerboard, bilinear output has lower total
	// variation than nearest-neighbor output.
	full := frame.New(256, 128)
	for y := 0; y < full.H; y++ {
		for x := 0; x < full.W; x++ {
			if (x+y)%2 == 0 {
				full.Set(x, y, 255, 255, 255)
			}
		}
	}
	vp := testViewport()
	variation := func(f *frame.Frame) (tv float64) {
		for j := 0; j < f.H; j++ {
			for i := 1; i < f.W; i++ {
				a := f.Luma(i, j)
				b := f.Luma(i-1, j)
				tv += math.Abs(float64(a - b))
			}
		}
		return tv
	}
	o := geom.Orientation{}
	nearest := Render(Config{Projection: projection.ERP, Filter: Nearest, Viewport: vp}, full, o)
	bilinear := Render(Config{Projection: projection.ERP, Filter: Bilinear, Viewport: vp}, full, o)
	if variation(bilinear) >= variation(nearest) {
		t.Errorf("bilinear TV %v should be below nearest TV %v", variation(bilinear), variation(nearest))
	}
}

func TestCostStats(t *testing.T) {
	cfg := Config{Projection: projection.ERP, Filter: Nearest, Viewport: testViewport()}
	s := cfg.Cost()
	if s.OutputPixels != 1600 || s.Fetches != 1600 {
		t.Errorf("nearest cost = %+v", s)
	}
	cfg.Filter = Bilinear
	s = cfg.Cost()
	if s.OutputPixels != 1600 || s.Fetches != 6400 {
		t.Errorf("bilinear cost = %+v", s)
	}
}

func TestRenderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	full := frame.New(64, 32)
	for i := range full.Pix {
		full.Pix[i] = byte(rng.Intn(256))
	}
	cfg := Config{Projection: projection.EAC, Filter: Bilinear, Viewport: testViewport()}
	o := geom.Orientation{Yaw: 0.5, Pitch: 0.1}
	a := Render(cfg, full, o)
	b := Render(cfg, full, o)
	if !a.Equal(b) {
		t.Error("render is not deterministic")
	}
}

func TestRenderPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Render(Config{}, frame.New(4, 4), geom.Orientation{})
}
