package pt

import (
	"math"
	"testing"

	"evr/internal/geom"
	"evr/internal/projection"
	"evr/internal/telemetry"
)

// TestBandObserverRecordsBands: with an observer installed, RenderParallel
// reports exactly one duration per row band per frame, pixels stay
// byte-identical to the unobserved render, and removing the observer stops
// the flow.
func TestBandObserverRecordsBands(t *testing.T) {
	full := randomFrame(96, 48, 11)
	o := geom.Orientation{Yaw: 0.3, Pitch: 0.1}
	cfg := Config{Projection: projection.ERP, Filter: Bilinear, Viewport: testViewport()}
	want := Render(cfg, full, o)

	h := telemetry.NewHistogram(telemetry.DefaultStageBuckets())
	SetBandObserver(h)
	defer SetBandObserver(nil)

	for _, workers := range []int{1, 4} {
		before := h.Snapshot().Count
		got := RenderParallel(cfg, full, o, workers)
		if !got.Equal(want) {
			t.Errorf("%d workers: observed render differs from reference", workers)
		}
		Recycle(got)
		if d := h.Snapshot().Count - before; d != int64(workers) {
			t.Errorf("%d workers: %d band observations, want %d", workers, d, workers)
		}
	}
	s := h.Snapshot()
	if s.Max <= 0 || s.Quantile(0.5) <= 0 {
		t.Errorf("band durations not positive: max=%v p50=%v", s.Max, s.Quantile(0.5))
	}

	SetBandObserver(nil)
	if BandObserver() != nil {
		t.Fatal("observer not removed")
	}
	before := s.Count
	Recycle(RenderParallel(cfg, full, o, 4))
	if got := h.Snapshot().Count; got != before {
		t.Errorf("removed observer still fed: %d → %d", before, got)
	}
}

// TestBandObserverConcurrentRenders drives parallel renders while toggling
// the observer — the atomic pointer must keep this race-clean under ci.sh's
// -race gate.
func TestBandObserverConcurrentRenders(t *testing.T) {
	full := randomFrame(64, 32, 3)
	o := geom.Orientation{Yaw: math.Pi / 4}
	cfg := Config{Projection: projection.ERP, Filter: Nearest, Viewport: testViewport()}
	h := telemetry.NewHistogram(nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			SetBandObserver(h)
			SetBandObserver(nil)
		}
	}()
	for i := 0; i < 50; i++ {
		Recycle(RenderParallel(cfg, full, o, 4))
	}
	<-done
	SetBandObserver(nil)
}
