package pt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/projection"
)

// TestParallelByteIdentityProperty is a randomized property test pinning the
// core guarantee the conformance subsystem builds on: RenderParallel is
// byte-identical to the serial RenderChecked for every worker count,
// including degenerate viewports (1×N, N×1) and prime dimensions where the
// row-band split produces ragged bands.
func TestParallelByteIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dims := [][2]int{{1, 1}, {1, 17}, {17, 1}, {13, 5}, {3, 31}, {29, 29}, {7, 23}, {2, 19}}
	projs := []projection.Method{projection.ERP, projection.CMP, projection.EAC}
	filters := []Filter{Nearest, Bilinear}
	iters := 80
	if testing.Short() {
		iters = 20
	}
	for iter := 0; iter < iters; iter++ {
		d := dims[rng.Intn(len(dims))]
		cfg := Config{
			Projection: projs[rng.Intn(len(projs))],
			Filter:     filters[rng.Intn(len(filters))],
			Viewport: projection.Viewport{
				Width: d[0], Height: d[1],
				FOVX: 0.3 + rng.Float64()*2.4,
				FOVY: 0.3 + rng.Float64()*2.4,
			},
		}
		inW, inH := 4+rng.Intn(40), 2+rng.Intn(30)
		full := frame.New(inW, inH)
		rng.Read(full.Pix)
		o := geom.Orientation{
			Yaw:   (rng.Float64()*2 - 1) * math.Pi,
			Pitch: (rng.Float64() - 0.5) * math.Pi,
			Roll:  (rng.Float64()*2 - 1) * 0.8,
		}
		workers := []int{1, 2, 3, 1 + rng.Intn(9), 64}[rng.Intn(5)]

		ref, err := RenderChecked(cfg, full, o)
		if err != nil {
			t.Fatalf("iter %d: RenderChecked: %v", iter, err)
		}
		par, err := RenderParallelChecked(cfg, full, o, workers)
		if err != nil {
			t.Fatalf("iter %d: RenderParallelChecked: %v", iter, err)
		}
		if par.W != ref.W || par.H != ref.H || !bytes.Equal(ref.Pix, par.Pix) {
			t.Fatalf("iter %d: parallel output diverges from serial (%v %v %dx%d input %dx%d workers %d pose %+v)",
				iter, cfg.Projection, cfg.Filter, d[0], d[1], inW, inH, workers, o)
		}
		Recycle(par)
	}
}
