package pt

import (
	"math"
	"math/rand"
	"testing"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/projection"
)

func randomFrame(w, h int, seed int64) *frame.Frame {
	rng := rand.New(rand.NewSource(seed))
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = byte(rng.Intn(256))
	}
	return f
}

// TestRenderParallelMatchesSerial is the determinism contract of the
// parallel engine: for every projection × filter × worker count, the banded
// parallel render is byte-identical to the serial reference raster scan.
// The yaw puts the ERP viewport across the longitude seam so the wrap path
// is exercised too. Run with -race to check the band partitioning.
func TestRenderParallelMatchesSerial(t *testing.T) {
	full := randomFrame(96, 48, 7)
	o := geom.Orientation{Yaw: math.Pi - 0.1, Pitch: 0.15}
	for _, m := range projection.Methods {
		for _, flt := range []Filter{Nearest, Bilinear} {
			cfg := Config{Projection: m, Filter: flt, Viewport: testViewport()}
			want := Render(cfg, full, o)
			for _, workers := range []int{1, 2, 8} {
				got := RenderParallel(cfg, full, o, workers)
				if !got.Equal(want) {
					t.Errorf("%v/%v: %d-worker output differs from serial", m, flt, workers)
				}
				Recycle(got)
			}
			// workers=0 resolves to the default pool and must also match.
			if got := RenderParallel(cfg, full, o, 0); !got.Equal(want) {
				t.Errorf("%v/%v: default-worker output differs from serial", m, flt)
			}
		}
	}
}

// TestERPSeamNoBorderBleed is the regression test for the longitude-wrap
// bug: a bilinear sample between the last and first ERP columns must blend
// the true neighbor from the opposite edge. Before the fix, frame sampling
// clamped at the border, so every pixel in the wrap zone repeated the black
// right edge instead of blending the white column 0.
func TestERPSeamNoBorderBleed(t *testing.T) {
	const fw, fh = 64, 32
	full := frame.New(fw, fh)
	for y := 0; y < fh; y++ {
		full.Set(0, y, 255, 255, 255) // column 0 white, everything else black
	}
	cfg := Config{
		Projection: projection.ERP,
		Filter:     Bilinear,
		Viewport: projection.Viewport{
			Width: 192, Height: 8,
			FOVX: geom.Radians(110), FOVY: geom.Radians(20),
		},
	}
	o := geom.Orientation{Yaw: math.Pi} // look straight at the ±180° seam
	out := Render(cfg, full, o)

	m := cfg.NewMapper(o, fw, fh)
	zone := 0
	for j := 0; j < cfg.Viewport.Height; j++ {
		for i := 0; i < cfg.Viewport.Width; i++ {
			u, v := m.Map(i, j)
			// Wrap zone: between the last column (x0 = fw-1) and the seam,
			// with the wrapped column 0 carrying ≥ 10% of the blend weight.
			if u <= float64(fw-1)+0.1 || u > float64(fw)-0.5 {
				continue
			}
			zone++
			if r, _, _ := out.At(i, j); r == 0 {
				t.Fatalf("pixel (%d, %d) at u=%.2f is black: seam sample clamped instead of wrapping", i, j, u)
			}
			// The old clamped sampler is still what cubemaps use; confirm it
			// would have produced the bled border here (the bug this guards).
			if rc, _, _ := full.BilinearAt(u, v); rc != 0 {
				t.Fatalf("clamped control sample at u=%.2f unexpectedly non-black", u)
			}
		}
	}
	if zone == 0 {
		t.Fatal("no output pixel landed in the seam wrap zone; regression test is vacuous")
	}
}

func TestRenderCheckedRejectsInvalidInput(t *testing.T) {
	good := Config{Projection: projection.ERP, Filter: Bilinear, Viewport: testViewport()}
	if _, err := RenderChecked(Config{}, frame.New(8, 8), geom.Orientation{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := RenderChecked(good, nil, geom.Orientation{}); err == nil {
		t.Error("nil input frame accepted")
	}
	if _, err := RenderChecked(good, &frame.Frame{}, geom.Orientation{}); err == nil {
		t.Error("empty input frame accepted")
	}
	if _, err := RenderParallelChecked(Config{}, frame.New(8, 8), geom.Orientation{}, 2); err == nil {
		t.Error("parallel: invalid config accepted")
	}
	if out, err := RenderChecked(good, frame.New(8, 8), geom.Orientation{}); err != nil || out == nil {
		t.Errorf("valid render failed: %v", err)
	}
}

func TestRenderParallelPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RenderParallel(Config{}, frame.New(4, 4), geom.Orientation{}, 2)
}

func TestRecycleReusesBuffers(t *testing.T) {
	cfg := Config{Projection: projection.ERP, Filter: Nearest, Viewport: testViewport()}
	full := randomFrame(64, 32, 11)
	o := geom.Orientation{Yaw: 0.3}
	want := Render(cfg, full, o)
	// Recycled buffers must never leak stale pixels into later renders.
	for i := 0; i < 4; i++ {
		got := RenderParallel(cfg, full, o, 2)
		if !got.Equal(want) {
			t.Fatalf("render %d through the pool differs from reference", i)
		}
		Recycle(got)
	}
	Recycle(nil) // must not panic
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Errorf("DefaultWorkers = %d, want 3", DefaultWorkers())
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() < 1 {
		t.Errorf("GOMAXPROCS default = %d, want ≥ 1", DefaultWorkers())
	}
}

// TestSetDefaultWorkersSaturates pins the int32 store against truncation:
// on 64-bit platforms a count past MaxInt32 used to wrap (possibly
// negative) and silently fall back to GOMAXPROCS; now it saturates.
func TestSetDefaultWorkersSaturates(t *testing.T) {
	if math.MaxInt == math.MaxInt32 {
		t.Skip("int is 32-bit; the truncating store cannot overflow")
	}
	defer SetDefaultWorkers(0)
	for _, n := range []int{math.MaxInt32 + 1, math.MaxInt, 1 << 33} {
		SetDefaultWorkers(n)
		if got := DefaultWorkers(); got != math.MaxInt32 {
			t.Errorf("SetDefaultWorkers(%d): DefaultWorkers = %d, want MaxInt32", n, got)
		}
	}
	// And the boundary itself is representable, not clamped away.
	SetDefaultWorkers(math.MaxInt32)
	if got := DefaultWorkers(); got != math.MaxInt32 {
		t.Errorf("SetDefaultWorkers(MaxInt32): DefaultWorkers = %d", got)
	}
}

// TestRecycleTwiceNoAlias pins the double-recycle guard: Recycle nils the
// frame's pixel slice, so recycling the same frame again must be a no-op
// rather than putting one buffer into the pool twice — which would hand two
// later renders the same backing array.
func TestRecycleTwiceNoAlias(t *testing.T) {
	f := newPooledFrame(8, 8)
	Recycle(f)
	if f.Pix != nil {
		t.Fatal("Recycle must nil the frame's pixel slice")
	}
	Recycle(f) // second recycle of the same frame: must be a no-op

	// Drain the pool into two frames; aliasing would make a write through
	// one visible through the other.
	a := newPooledFrame(8, 8)
	b := newPooledFrame(8, 8)
	for i := range a.Pix {
		a.Pix[i] = 0xAA
	}
	for i := range b.Pix {
		b.Pix[i] = 0x55
	}
	for i, v := range a.Pix {
		if v != 0xAA {
			t.Fatalf("double recycle aliased pooled buffers: a.Pix[%d] = %#x", i, v)
		}
	}
}

func TestMapperMatchesMapPixel(t *testing.T) {
	cfg := Config{Projection: projection.EAC, Filter: Bilinear, Viewport: testViewport()}
	o := geom.Orientation{Yaw: 1.1, Pitch: -0.4, Roll: 0.2}
	m := cfg.NewMapper(o, 128, 64)
	for j := 0; j < cfg.Viewport.Height; j += 7 {
		for i := 0; i < cfg.Viewport.Width; i += 7 {
			u1, v1 := m.Map(i, j)
			u2, v2 := cfg.MapPixel(o, 128, 64, i, j)
			if u1 != u2 || v1 != v2 {
				t.Fatalf("Mapper (%v, %v) != MapPixel (%v, %v) at (%d, %d)", u1, v1, u2, v2, i, j)
			}
		}
	}
}
