package pt

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/telemetry"
)

// The parallel renderer splits the output viewport into contiguous row
// bands and renders them concurrently into disjoint slices of one output
// frame. Every pixel is a pure function of (Config, Orientation, input
// frame), so the banded schedule is byte-identical to the serial raster
// scan — parallelism changes wall-clock time, never output. This is the
// software analogue of the paper's multi-PTU dispatch (§6.2): PTUs share
// the per-frame configuration registers and own disjoint output regions.

// defaultWorkers is the worker count substituted when RenderParallel is
// called with workers == 0. Zero means runtime.GOMAXPROCS(0); cmd/evrbench
// overrides it via the -workers flag.
var defaultWorkers atomic.Int32

// SetDefaultWorkers fixes the worker count used when RenderParallel is
// called with workers == 0. n <= 0 restores the GOMAXPROCS default.
// Counts beyond the int32 store saturate instead of truncating — a huge n
// must mean "all the parallelism there is", never wrap negative and
// silently restore the default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n > math.MaxInt32 {
		n = math.MaxInt32
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the effective worker count for workers == 0.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// bandObserver, when set, receives the wall-clock duration of every row
// band rendered by RenderParallel — one observation per worker per frame.
// The histogram's p50-vs-max spread is worker-pool skew: bands are
// near-equal row counts, so a long tail means uneven per-row cost (pole
// rows sample fewer source texels than equator rows) or scheduler
// preemption. Disabled (nil) it costs one atomic load per band, not per
// pixel; cmd/evrbench -telemetry turns it on.
var bandObserver atomic.Pointer[telemetry.Histogram]

// SetBandObserver installs (or, with nil, removes) the histogram that
// receives per-band render durations from RenderParallel.
func SetBandObserver(h *telemetry.Histogram) { bandObserver.Store(h) }

// BandObserver returns the installed per-band histogram (nil when off).
func BandObserver() *telemetry.Histogram { return bandObserver.Load() }

// pixPool recycles output pixel buffers between renders. A 1080p RGB24
// frame is ~6 MB; at 60 FPS the allocator would otherwise churn through
// ~360 MB/s of short-lived buffers on the playback hot path.
var pixPool sync.Pool

// newPooledFrame returns a w×h frame backed by a recycled pixel buffer when
// one of sufficient capacity is available. The render writes every pixel,
// so stale contents never leak into the output.
func newPooledFrame(w, h int) *frame.Frame {
	n := w * h * 3
	if buf, ok := pixPool.Get().(*[]byte); ok && cap(*buf) >= n {
		return &frame.Frame{W: w, H: h, Pix: (*buf)[:n]}
	}
	return frame.New(w, h)
}

// NewPooledFrame returns a w×h frame backed by the shared render buffer
// pool, for render paths outside this package (the mapping-LUT renderer)
// that produce frames callers hand back via Recycle. The frame's pixels are
// unspecified — the caller must write every one.
func NewPooledFrame(w, h int) *frame.Frame { return newPooledFrame(w, h) }

// Recycle returns a frame's pixel buffer to the render pool. The caller
// must not touch f afterwards. Recycling is optional — frames that are
// kept alive simply stay with the garbage collector.
func Recycle(f *frame.Frame) {
	if f == nil || cap(f.Pix) == 0 {
		return
	}
	buf := f.Pix[:0]
	f.Pix = nil
	pixPool.Put(&buf)
}

// RenderParallel is Render distributed over a worker pool: the output
// viewport is split into contiguous row bands rendered concurrently.
// workers == 0 uses DefaultWorkers (GOMAXPROCS unless overridden); the
// output is byte-identical to the serial Render for every worker count.
// It panics on an invalid configuration; use RenderParallelChecked to get
// the error instead.
func RenderParallel(c Config, full *frame.Frame, o geom.Orientation, workers int) *frame.Frame {
	out, err := RenderParallelChecked(c, full, o, workers)
	if err != nil {
		panic(err)
	}
	return out
}

// RenderParallelChecked is RenderParallel with up-front validation.
func RenderParallelChecked(c Config, full *frame.Frame, o geom.Orientation, workers int) (*frame.Frame, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if full == nil || full.W <= 0 || full.H <= 0 {
		return nil, fmt.Errorf("pt: input frame must be non-empty")
	}
	h := c.Viewport.Height
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > h {
		workers = h
	}
	out := newPooledFrame(c.Viewport.Width, h)
	obs := bandObserver.Load()
	if workers <= 1 {
		renderBand(c, full, o, out, 0, h, obs)
		return out, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Split h rows into `workers` near-equal contiguous bands.
		j0 := w * h / workers
		j1 := (w + 1) * h / workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			renderBand(c, full, o, out, j0, j1, obs)
		}()
	}
	wg.Wait()
	return out, nil
}

// renderBand renders one contiguous row band, reporting its duration to
// the band observer when one is installed. The clock is only read when
// observing, so the disabled path adds a nil test per band.
func renderBand(c Config, full *frame.Frame, o geom.Orientation, out *frame.Frame, j0, j1 int, obs *telemetry.Histogram) {
	if obs == nil {
		c.renderRows(full, o, out, j0, j1)
		return
	}
	t0 := time.Now()
	c.renderRows(full, o, out, j0, j1)
	obs.ObserveDuration(time.Since(t0))
}
