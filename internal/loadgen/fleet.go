package loadgen

import (
	"fmt"
	"sort"
	"time"

	"evr/internal/client"
	"evr/internal/delivery"
	"evr/internal/energy"
	"evr/internal/fixed"
	"evr/internal/hmd"
	"evr/internal/netsim"
	"evr/internal/scene"
	"evr/internal/telemetry"
)

// ClassSpec describes one client class of a heterogeneous fleet: how many
// users it contributes, what they watch, and the device/delivery profile
// they run — projection (via the video spec), delivery mode, PTE bitwidth,
// client cache budget, and the modeled access link. A Config with Classes
// set ignores the flat Users/Video/Spec/Zipf knobs: the fleet IS the user
// population.
type ClassSpec struct {
	// Name labels the class in reports. Required, unique per run.
	Name string
	// Users is this class's session count per pass (≥ 1).
	Users int
	// Video names the catalog video this class plays; Spec overrides the
	// catalog lookup when its Name is non-empty (e.g. a projection variant
	// of a catalog video).
	Video string
	Spec  scene.VideoSpec
	// Delivery picks the per-class delivery mode: "" or "fov" for the
	// classic FOV/orig player, "tiled"/"orig" to pin the tiled pipeline to
	// one mode, "policy" to let the three-way policy decide per segment.
	// Tiled modes only engage for videos ingested with tile streams.
	Delivery string
	// UseHAR renders FOV misses on the PTE accelerator; PTEFormat then
	// overrides the fixed-point bitwidth (zero = the default Q28.10).
	UseHAR    bool
	PTEFormat fixed.Format
	// CacheSegments bounds the client segment cache (0 = client default).
	CacheSegments int
	// Link names the modeled access-link class (netsim.ClassByName) the
	// tiled policy budgets against. "" = the 300 Mbps Wi-Fi default.
	Link string
	// ViewportScale overrides Config.ViewportScale for this class (0 =
	// inherit).
	ViewportScale int
}

// resolveSpec returns the video spec a class plays.
func (cs *ClassSpec) resolveSpec() (scene.VideoSpec, error) {
	if cs.Spec.Name != "" {
		return cs.Spec, nil
	}
	v, ok := scene.ByName(cs.Video)
	if !ok {
		return scene.VideoSpec{}, fmt.Errorf("loadgen: class %q: unknown video %q", cs.Name, cs.Video)
	}
	return v, nil
}

// validateClasses checks the fleet and returns the total user count.
func validateClasses(classes []ClassSpec) (int, error) {
	total := 0
	seen := make(map[string]bool, len(classes))
	for i := range classes {
		cs := &classes[i]
		if cs.Name == "" {
			return 0, fmt.Errorf("loadgen: class %d: Name required", i)
		}
		if seen[cs.Name] {
			return 0, fmt.Errorf("loadgen: duplicate class %q", cs.Name)
		}
		seen[cs.Name] = true
		if cs.Users < 1 {
			return 0, fmt.Errorf("loadgen: class %q: Users %d must be ≥ 1", cs.Name, cs.Users)
		}
		switch cs.Delivery {
		case "", "fov", "tiled", "orig", "policy":
		default:
			return 0, fmt.Errorf("loadgen: class %q: unknown delivery mode %q", cs.Name, cs.Delivery)
		}
		if cs.Link != "" {
			if _, ok := netsim.ClassByName(cs.Link); !ok {
				return 0, fmt.Errorf("loadgen: class %q: unknown link class %q", cs.Name, cs.Link)
			}
		}
		if _, err := cs.resolveSpec(); err != nil {
			return 0, err
		}
		total += cs.Users
	}
	return total, nil
}

// tiledConfig translates a class's delivery mode into the player's tiled
// config, nil for the classic FOV/orig pipeline.
func (cs *ClassSpec) tiledConfig() *client.TiledConfig {
	var force delivery.Mode
	switch cs.Delivery {
	case "tiled":
		force = delivery.ModeTiled
	case "orig":
		force = delivery.ModeOrig
	case "policy":
		force = delivery.ModeAuto
	default:
		return nil
	}
	tc := client.TiledConfig{Enabled: true, Force: force}
	if cs.Link != "" {
		tc.Link, _ = netsim.ClassByName(cs.Link)
	}
	return &tc
}

// ClassStats aggregates one class's sessions across every pass.
type ClassStats struct {
	Name         string
	Users        int // sessions per pass
	Sessions     int // total across passes
	Failures     int
	Frames       int
	Hits         int
	HitRate      float64
	Stalls       int     // modeled rebuffer events (tiled classes)
	StallSec     float64 // modeled rebuffer seconds
	BytesFetched int64
	CacheHits    int
	Retries      int
	// EnergyJ is the modeled client-device energy across the class's
	// successful sessions: network + decode per wire byte, display
	// processing per rendered viewport pixel (TX2 coefficients).
	EnergyJ float64
	// Live freshness, from sessions that fetched at or past the live edge.
	LiveWaits        int
	LiveSegments     int
	BehindLiveP50Sec float64
	BehindLiveP99Sec float64
	BehindLiveMaxSec float64
}

// fleetState is the per-run bookkeeping Classes mode adds: the user →
// class mapping and one behind-live histogram per class.
type fleetState struct {
	classes []ClassSpec
	byUser  []int // user index → class index
	behind  []*telemetry.Histogram
	specs   []scene.VideoSpec // resolved per class
}

// newFleetState expands the class list into per-user assignments, class
// by class in order — user IDs stay stable run to run, which the
// determinism gates lean on.
func newFleetState(classes []ClassSpec, totalUsers int) (*fleetState, error) {
	fs := &fleetState{
		classes: classes,
		byUser:  make([]int, 0, totalUsers),
		behind:  make([]*telemetry.Histogram, len(classes)),
		specs:   make([]scene.VideoSpec, len(classes)),
	}
	for ci := range classes {
		spec, err := classes[ci].resolveSpec()
		if err != nil {
			return nil, err
		}
		fs.specs[ci] = spec
		fs.behind[ci] = telemetry.NewHistogram(telemetry.DefaultLatencyBuckets())
		for u := 0; u < classes[ci].Users; u++ {
			fs.byUser = append(fs.byUser, ci)
		}
	}
	return fs, nil
}

// sessionEnergyJ models one session's client-device energy draw with the
// TX2 coefficients: every wire byte is received and decoded, every
// displayed frame pays display processing per viewport pixel.
func sessionEnergyJ(stats client.PlaybackStats, viewportScale int) float64 {
	m := energy.TX2()
	vp := hmd.OSVRHDK2().ScaledViewport(viewportScale)
	bytes := float64(stats.BytesFetched)
	pixels := float64(stats.Frames) * float64(vp.Width) * float64(vp.Height)
	return bytes*(m.NetJPerByte+m.DecodeJPerByte) + pixels*m.DisplayProcJPerPixel
}

// aggregateClasses folds every session result into per-class stats.
func aggregateClasses(fs *fleetState, results []UserResult, cfg Config) []ClassStats {
	out := make([]ClassStats, len(fs.classes))
	for ci := range fs.classes {
		out[ci].Name = fs.classes[ci].Name
		out[ci].Users = fs.classes[ci].Users
	}
	for _, r := range results {
		ci := fs.byUser[r.User]
		st := &out[ci]
		st.Sessions++
		if r.Err != nil {
			st.Failures++
			continue
		}
		st.Frames += r.Stats.Frames
		st.Hits += r.Stats.Hits
		st.Stalls += r.Stats.ModeledStalls
		st.StallSec += r.Stats.ModeledStallSec
		st.BytesFetched += r.Stats.BytesFetched
		st.CacheHits += r.Stats.CacheHits
		st.Retries += r.Stats.Retries
		st.LiveWaits += r.Stats.LiveWaits
		st.LiveSegments += r.Stats.LiveSegments
		if r.Stats.BehindLiveMaxSec > st.BehindLiveMaxSec {
			st.BehindLiveMaxSec = r.Stats.BehindLiveMaxSec
		}
		scale := fs.classes[ci].ViewportScale
		if scale == 0 {
			scale = cfg.ViewportScale
		}
		if scale == 0 {
			scale = 40 // player default
		}
		st.EnergyJ += sessionEnergyJ(r.Stats, scale)
	}
	for ci := range out {
		if out[ci].Frames > 0 {
			out[ci].HitRate = float64(out[ci].Hits) / float64(out[ci].Frames)
		}
		snap := fs.behind[ci].Snapshot()
		if snap.Count > 0 {
			out[ci].BehindLiveP50Sec = snap.Quantile(0.50)
			out[ci].BehindLiveP99Sec = snap.Quantile(0.99)
		}
	}
	return out
}

// ClassByName returns the named class stats from a report, false when the
// report has no such class.
func (r *Report) ClassByName(name string) (ClassStats, bool) {
	for _, cs := range r.Classes {
		if cs.Name == name {
			return cs, true
		}
	}
	return ClassStats{}, false
}

// BehindLiveP99 returns the worst per-class freshness p99 across the
// report, as a duration — the survival gate's headline SLO number.
func (r *Report) BehindLiveP99() time.Duration {
	worst := 0.0
	for _, cs := range r.Classes {
		if cs.BehindLiveP99Sec > worst {
			worst = cs.BehindLiveP99Sec
		}
	}
	return time.Duration(worst * float64(time.Second))
}

// classVideos lists the distinct videos a fleet plays, sorted.
func classVideos(fs *fleetState) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range fs.specs {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}
