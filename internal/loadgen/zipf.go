package loadgen

import (
	"math"

	"evr/internal/cluster"
	"evr/internal/telemetry"
)

// zipfAssign returns the catalog index user u plays under a Zipf(s)
// popularity law over n videos, rank = index (catalog[0] is the most
// popular). The draw is a hash of the user index mapped through the Zipf
// CDF — fully deterministic, so every pass (and every re-run) assigns the
// same user the same video, which keeps the soak's pass-to-pass checksum
// assertion meaningful in Zipf mode.
func zipfAssign(user, n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// splitmix64 of the user index → uniform in [0, 1).
	x := uint64(user) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u01 := float64(x>>11) / float64(1<<53)

	var total float64
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		total += weights[i]
	}
	var cum float64
	for i, w := range weights {
		cum += w / total
		if u01 < cum {
			return i
		}
	}
	return n - 1
}

// ShardDelta is one shard's routed-request change over one pass.
type ShardDelta struct {
	Name     string
	Alive    bool // at pass end
	Requests int64
	Shed     int64
}

// ClusterDelta is the change in routed-tier counters over one pass
// (in-process cluster targets only).
type ClusterDelta struct {
	Rerouted      int64
	NoShard       int64
	EdgeHits      int64
	EdgeMisses    int64
	EdgeCoalesced int64
	Shards        []ShardDelta
}

// EdgeHitRate returns the pass's edge hit fraction over all edge lookups.
func (d *ClusterDelta) EdgeHitRate() float64 {
	total := d.EdgeHits + d.EdgeMisses + d.EdgeCoalesced
	if total == 0 {
		return 0
	}
	return float64(d.EdgeHits) / float64(total)
}

// Skew returns the pass's per-shard load skew: the max routed-request
// share over the mean across shards that served anything or are alive.
// 1.0 is a perfect split; the consistent-hash ring should keep this near
// the vnode balance bound.
func (d *ClusterDelta) Skew() float64 {
	var total, max int64
	n := 0
	for _, sh := range d.Shards {
		if !sh.Alive && sh.Requests == 0 {
			continue // dead the whole pass: not part of the split
		}
		n++
		total += sh.Requests
		if sh.Requests > max {
			max = sh.Requests
		}
	}
	if n == 0 || total == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(n))
}

// clusterDelta diffs two cluster snapshots into a pass delta.
func clusterDelta(before, after cluster.Stats) *ClusterDelta {
	d := &ClusterDelta{
		Rerouted: after.Router.Rerouted - before.Router.Rerouted,
		NoShard:  after.Router.NoShard - before.Router.NoShard,
	}
	if before.Edge != nil && after.Edge != nil {
		d.EdgeHits = after.Edge.Hits - before.Edge.Hits
		d.EdgeMisses = after.Edge.Misses - before.Edge.Misses
		d.EdgeCoalesced = after.Edge.Coalesced - before.Edge.Coalesced
	}
	for i, sh := range after.Shards {
		sd := ShardDelta{Name: sh.Name, Alive: sh.Alive, Requests: sh.Requests, Shed: sh.Shed}
		if i < len(before.Shards) {
			sd.Requests -= before.Shards[i].Requests
			sd.Shed -= before.Shards[i].Shed
		}
		d.Shards = append(d.Shards, sd)
	}
	return d
}

// deltaSnapshot subtracts two cumulative histogram snapshots taken from
// the same histogram, yielding the distribution of just the observations
// between them — the per-pass latency view.
func deltaSnapshot(before, after telemetry.HistogramSnapshot) telemetry.HistogramSnapshot {
	if len(before.Counts) != len(after.Counts) {
		return after
	}
	d := telemetry.HistogramSnapshot{
		Bounds: after.Bounds,
		Counts: make([]int64, len(after.Counts)),
		Sum:    after.Sum - before.Sum,
		// Quantile clamps to Max; the run-wide max is the tightest bound a
		// cumulative histogram can offer a slice of itself.
		Max: after.Max,
	}
	for i := range d.Counts {
		d.Counts[i] = after.Counts[i] - before.Counts[i]
		d.Count += d.Counts[i]
	}
	return d
}
