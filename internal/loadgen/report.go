package loadgen

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteText renders the report as the evrload CLI output: a per-pass
// summary, the request-latency distribution, and (with perUser) one row
// per session.
func (r *Report) WriteText(w io.Writer, perUser bool) {
	if len(r.Videos) > 1 {
		fmt.Fprintf(w, "loadgen: %d users × %d pass(es) over %d videos", r.Users, r.Passes, len(r.Videos))
		if r.Zipf > 0 {
			fmt.Fprintf(w, " (zipf s=%.2f)", r.Zipf)
		}
	} else {
		fmt.Fprintf(w, "loadgen: %d users × %d pass(es) over %s", r.Users, r.Passes, r.Video)
	}
	if r.Segments > 0 {
		fmt.Fprintf(w, " (%d segments)", r.Segments)
	}
	fmt.Fprintf(w, ", wall time %v\n", r.Elapsed.Round(time.Millisecond))

	for _, ps := range r.PerPass {
		fmt.Fprintf(w, "pass %d: %d frames in %v (%.0f fps aggregate), FOV hit %.1f%%, %s fetched",
			ps.Pass, ps.Frames, ps.Elapsed.Round(time.Millisecond), ps.FramesPerSec, 100*ps.HitRate, byteSize(ps.BytesFetched))
		if ps.Failures > 0 {
			fmt.Fprintf(w, ", %d/%d sessions FAILED", ps.Failures, ps.Sessions)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "        client cache hits %d, retries %d", ps.ClientHits, ps.Retries)
		if ps.Server != nil {
			fmt.Fprintf(w, "; server respcache %d hits / %d misses / %d coalesced, %d throttled",
				ps.Server.CacheHits, ps.Server.CacheMisses, ps.Server.CacheCoalesced, ps.Server.Throttled)
		}
		fmt.Fprintln(w)
		if n := ps.ModeFOVSegments + ps.ModeTiledSegments + ps.ModeOrigSegments; n > 0 {
			fmt.Fprintf(w, "        delivery: %d fov / %d tiled / %d orig segments, %d tiles (%d lost), %d mispredicted, modeled %s, %d stalls (%.2fs)\n",
				ps.ModeFOVSegments, ps.ModeTiledSegments, ps.ModeOrigSegments,
				ps.TiledTiles, ps.TiledTileErrors, ps.MispredictedTiles,
				byteSize(ps.ModeledBytes), ps.ModeledStalls, ps.ModeledStallSec)
		}
		fmt.Fprintf(w, "        latency p50 %v  p99 %v\n",
			ps.P50.Round(time.Microsecond), ps.P99.Round(time.Microsecond))
		if cd := ps.Cluster; cd != nil {
			fmt.Fprintf(w, "        cluster: edge hit rate %.1f%% (%d hits / %d misses / %d coalesced), %d rerouted, %d no-shard, skew %.2f×\n",
				100*cd.EdgeHitRate(), cd.EdgeHits, cd.EdgeMisses, cd.EdgeCoalesced,
				cd.Rerouted, cd.NoShard, cd.Skew())
			for _, sh := range cd.Shards {
				state := "up"
				if !sh.Alive {
					state = "DOWN"
				}
				fmt.Fprintf(w, "          %-9s %4s  %6d reqs  %4d shed\n", sh.Name, state, sh.Requests, sh.Shed)
			}
		}
	}

	if len(r.Classes) > 0 {
		fmt.Fprintf(w, "fleet classes:\n")
		fmt.Fprintf(w, "  %-14s %5s %5s %7s %10s %8s %6s %10s %9s %9s %9s\n",
			"class", "users", "fail", "hit%", "bytes", "energy", "waits", "behind-p50", "p99", "max", "stalls")
		for _, cs := range r.Classes {
			behind50, behind99, behindMax := "-", "-", "-"
			if cs.LiveSegments > 0 {
				behind50 = fmt.Sprintf("%.0fms", 1000*cs.BehindLiveP50Sec)
				behind99 = fmt.Sprintf("%.0fms", 1000*cs.BehindLiveP99Sec)
				behindMax = fmt.Sprintf("%.0fms", 1000*cs.BehindLiveMaxSec)
			}
			fmt.Fprintf(w, "  %-14s %5d %5d %6.1f%% %10s %7.2fJ %6d %10s %9s %9s %9d\n",
				cs.Name, cs.Users, cs.Failures, 100*cs.HitRate, byteSize(cs.BytesFetched),
				cs.EnergyJ, cs.LiveWaits, behind50, behind99, behindMax, cs.Stalls)
		}
	}

	l := r.Latency
	fmt.Fprintf(w, "request latency (%d requests, %d errors): p50 %v  p95 %v  p99 %v  max %v\n",
		l.Requests, l.Errors,
		l.P50.Round(time.Microsecond), l.P95.Round(time.Microsecond),
		l.P99.Round(time.Microsecond), l.Max.Round(time.Microsecond))

	if hr := r.perUserHitRates(); len(hr) > 0 {
		fmt.Fprintf(w, "per-user FOV-hit rate: min %.1f%%  median %.1f%%  max %.1f%%\n",
			100*hr[0], 100*hr[len(hr)/2], 100*hr[len(hr)-1])
	}

	if perUser {
		fmt.Fprintf(w, "%5s %5s %8s %7s %7s %9s %10s %8s\n",
			"user", "pass", "frames", "hits", "hit%", "fallback", "bytes", "elapsed")
		for _, u := range r.Results {
			if u.Err != nil {
				fmt.Fprintf(w, "%5d %5d  FAILED: %v\n", u.User, u.Pass, u.Err)
				continue
			}
			fmt.Fprintf(w, "%5d %5d %8d %7d %6.1f%% %9d %10d %8v\n",
				u.User, u.Pass, u.Stats.Frames, u.Stats.Hits, 100*u.HitRate(),
				u.Stats.Fallbacks, u.Stats.BytesFetched, u.Elapsed.Round(time.Millisecond))
		}
	}
}

// perUserHitRates returns every successful session's hit rate, sorted.
func (r *Report) perUserHitRates() []float64 {
	var out []float64
	for _, u := range r.Results {
		if u.Err == nil {
			out = append(out, u.HitRate())
		}
	}
	sort.Float64s(out)
	return out
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
