package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"evr/internal/cluster"
	"evr/internal/scene"
	"evr/internal/server"
	"evr/internal/store"
)

// soakSpec is a tiny deterministic video: 2 segments of 30 frames with one
// slowly-drifting object, cheap enough to ingest and replay under -race.
func soakSpec() scene.VideoSpec {
	return scene.VideoSpec{
		Name:     "SOAK",
		Duration: 2,
		FPS:      30,
		Objects: []scene.ObjectSpec{{
			ID: 0, BaseYaw: 0.3, BasePitch: 0.1, DriftYaw: 0.2,
			Radius: 0.35, Color: [3]byte{220, 40, 40},
		}},
		Complexity: 0.3,
	}
}

func soakIngest() server.IngestConfig {
	cfg := server.DefaultIngestConfig()
	cfg.FullW, cfg.FullH = 48, 24
	cfg.FOVW, cfg.FOVH = 16, 16
	cfg.MaxSegments = 2
	cfg.Codec.SearchRange = 1
	return cfg
}

// soakService ingests soakSpec into a fresh in-process service. StoreDelay
// widens the cache-miss window so that 32 simultaneous first requests for
// the same segment must coalesce rather than racing past each other.
func soakService(t *testing.T, opts server.ServiceOptions) *server.Service {
	t.Helper()
	svc := server.NewServiceOpts(store.New(), opts)
	if _, err := svc.IngestVideo(soakSpec(), soakIngest()); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	return svc
}

// TestSoak32ConcurrentSessions is the CI concurrency soak: 32 users × 2
// passes against an in-process server with the response cache and synthetic
// store latency enabled, run under -race by ci.sh. It asserts the
// serving-path invariants the issue pins down: every session succeeds,
// displayed frames are byte-identical across passes, singleflight coalesces
// concurrent identical misses, and pass 2 is served from the response cache.
func TestSoak32ConcurrentSessions(t *testing.T) {
	opts := server.DefaultServiceOptions()
	opts.StoreDelay = 15 * time.Millisecond
	svc := soakService(t, opts)

	baseURL, shutdown, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	const users = 32
	rep, err := Run(Config{
		BaseURL: baseURL,
		Spec:    soakSpec(),
		Users:   users,
		Passes:  2,
		// 1/32 of the panel keeps 64 pixel-exact sessions affordable
		// under -race; the checksums still cover every displayed pixel.
		ViewportScale: 32,
		Service:       svc,
	})
	if err != nil {
		t.Fatal(err)
	}

	if fails := rep.Failures(); len(fails) != 0 {
		t.Fatalf("%d/%d sessions failed, first: user %d pass %d: %v",
			len(fails), len(rep.Results), fails[0].User, fails[0].Pass, fails[0].Err)
	}
	if len(rep.Results) != users*2 {
		t.Fatalf("got %d results, want %d", len(rep.Results), users*2)
	}

	// Determinism: each user's displayed frames are byte-identical pass to
	// pass — the caches and the concurrency never change pixels.
	byUser := map[int]map[int]uint64{}
	for _, r := range rep.Results {
		if byUser[r.User] == nil {
			byUser[r.User] = map[int]uint64{}
		}
		byUser[r.User][r.Pass] = r.Checksum
	}
	for u := 0; u < users; u++ {
		if byUser[u][1] != byUser[u][2] {
			t.Errorf("user %d frames differ across passes: %#x vs %#x", u, byUser[u][1], byUser[u][2])
		}
		if byUser[u][1] == 0 {
			t.Errorf("user %d produced no frames", u)
		}
	}

	// Every frame is either a FOV hit or a fallback miss.
	for _, ps := range rep.PerPass {
		if ps.Frames == 0 {
			t.Fatalf("pass %d rendered no frames", ps.Pass)
		}
		if ps.Hits+ps.Misses != ps.Frames {
			t.Errorf("pass %d: hits %d + misses %d != frames %d", ps.Pass, ps.Hits, ps.Misses, ps.Frames)
		}
		if ps.Server == nil {
			t.Fatalf("pass %d: no server-side delta for in-process target", ps.Pass)
		}
	}

	// Singleflight: 32 users fetch the same manifest and segments at once
	// while the store is slow, so concurrent identical misses must coalesce.
	p1 := rep.PerPass[0].Server
	if p1.CacheCoalesced == 0 {
		t.Error("pass 1 coalesced no concurrent identical misses")
	}
	// Response cache: pass 2 replays the same traces through fresh players
	// (cold client caches), so the server must serve it from cache.
	p2 := rep.PerPass[1].Server
	if p2.CacheHits == 0 {
		t.Error("pass 2 got no server response-cache hits")
	}
	if p2.CacheMisses != 0 {
		t.Errorf("pass 2 missed the response cache %d times", p2.CacheMisses)
	}

	// Latency quantiles: monotone and bounded below by the store delay on
	// at least the max (pass-1 misses pay StoreDelay).
	l := rep.Latency
	if l.Requests == 0 {
		t.Fatal("no requests measured")
	}
	if l.P50 < 0 || l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max {
		t.Errorf("latency quantiles not monotone: p50 %v p95 %v p99 %v max %v", l.P50, l.P95, l.P99, l.Max)
	}
	if l.Max < opts.StoreDelay {
		t.Errorf("max latency %v below the synthetic store delay %v", l.Max, opts.StoreDelay)
	}

	// The text report renders without panicking and mentions the headline
	// numbers the CLI is specified to print.
	var sb strings.Builder
	rep.WriteText(&sb, true)
	out := sb.String()
	for _, want := range []string{"p50", "p95", "p99", "FOV hit", "coalesced", "per-user FOV-hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

// TestRunRejectsBadConfig pins the validate() edges.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://x", Video: "RS", Users: 0}); err == nil {
		t.Error("Users=0 accepted")
	}
	if _, err := Run(Config{Video: "RS", Users: 1}); err == nil {
		t.Error("empty BaseURL accepted")
	}
	if _, err := Run(Config{BaseURL: "http://x", Video: "no-such-video", Users: 1}); err == nil {
		t.Error("unknown video accepted")
	}
}

// TestServeRoundTrip exercises the in-process listener helper on its own.
func TestServeRoundTrip(t *testing.T) {
	svc := soakService(t, server.DefaultServiceOptions())
	baseURL, shutdown, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	rep, err := Run(Config{
		BaseURL:       baseURL,
		Spec:          soakSpec(),
		Users:         2,
		Segments:      1,
		ViewportScale: 32,
		Service:       svc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures()) != 0 {
		t.Fatalf("failures: %v", rep.Failures())
	}
	if rep.PerPass[0].Frames != 2*30 {
		t.Errorf("2 users × 1 segment = %d frames, want 60", rep.PerPass[0].Frames)
	}
}

// TestShutdownDrainsInflightRequests pins the graceful-teardown bugfix:
// shutting the in-process listener down while requests are mid-flight
// must let them complete instead of resetting their connections. Before
// the fix (http.Server.Close) the in-flight responses died with transport
// errors — the "spurious error noise" multi-pass evrload runs saw when a
// pass's tail overlapped the teardown.
func TestShutdownDrainsInflightRequests(t *testing.T) {
	opts := server.DefaultServiceOptions()
	opts.StoreDelay = 150 * time.Millisecond // hold requests in flight
	svc := soakService(t, opts)
	baseURL, shutdown, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	inflight := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inflight <- struct{}{}
			// Distinct segments so every request pays the slow store load
			// rather than coalescing onto one flight.
			resp, err := http.Get(fmt.Sprintf("%s/v/SOAK/orig/%d", baseURL, i%2))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if _, err := io.ReadAll(resp.Body); err != nil {
				errs[i] = fmt.Errorf("reading body: %w", err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-inflight
	}
	// All launched; give them a beat to be accepted by the server, then
	// shut down while the store delay still holds them open.
	time.Sleep(30 * time.Millisecond)
	done := make(chan struct{})
	go func() { shutdown(); close(done) }()
	wg.Wait()
	<-done

	for i, err := range errs {
		if err != nil {
			t.Errorf("in-flight request %d dropped by shutdown: %v", i, err)
		}
	}

	// And the listener really is down afterward.
	if _, err := http.Get(baseURL + "/healthz"); err == nil {
		t.Error("server still serving after shutdown")
	}
}

// TestZipfRoutedRunAcrossVideos drives the routed cluster tier in Zipf
// popularity mode: users draw videos under a skewed law, the router
// partitions segments across shards, and the report carries per-shard
// skew and edge-hit-rate deltas.
func TestZipfRoutedRunAcrossVideos(t *testing.T) {
	specs := make([]scene.VideoSpec, 3)
	for i := range specs {
		s := soakSpec()
		s.Name = fmt.Sprintf("ZIPF%d", i)
		s.Objects[0].BaseYaw += 0.1 * float64(i)
		specs[i] = s
	}
	copts := cluster.DefaultOptions()
	copts.Shards = 3
	clu, err := cluster.New(nil, copts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if _, err := clu.Ingest(s, soakIngest()); err != nil {
			t.Fatalf("ingest %s: %v", s.Name, err)
		}
	}
	baseURL, shutdown, err := ServeHandler(clu.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	rep, err := Run(Config{
		BaseURL:       baseURL,
		Specs:         specs,
		ZipfExponent:  1.2,
		Users:         12,
		Passes:        2,
		ViewportScale: 32,
		Cluster:       clu,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fails := rep.Failures(); len(fails) != 0 {
		t.Fatalf("%d sessions failed, first: %v", len(fails), fails[0].Err)
	}
	if len(rep.Videos) != 3 || rep.Zipf != 1.2 {
		t.Errorf("report catalog = %v zipf %v", rep.Videos, rep.Zipf)
	}

	// The Zipf draw is deterministic and skewed: the head video gets the
	// plurality of users, and assignments repeat across passes.
	byVideo := map[string]int{}
	for _, r := range rep.Results {
		if r.Pass == 1 {
			byVideo[r.Video]++
		}
	}
	if byVideo["ZIPF0"] <= byVideo["ZIPF2"] {
		t.Errorf("popularity not skewed: %v", byVideo)
	}

	// Per-pass cluster deltas: skew bounded, edge absorbing repeats by
	// pass 2 (fresh players, same segments).
	for _, ps := range rep.PerPass {
		cd := ps.Cluster
		if cd == nil {
			t.Fatalf("pass %d missing cluster delta", ps.Pass)
		}
		if len(cd.Shards) != 3 {
			t.Fatalf("pass %d: %d shard deltas", ps.Pass, len(cd.Shards))
		}
		if ps.P99 < ps.P50 {
			t.Errorf("pass %d: p99 %v < p50 %v", ps.Pass, ps.P99, ps.P50)
		}
	}
	p2 := rep.PerPass[1].Cluster
	if p2.EdgeHits == 0 {
		t.Error("pass 2 hit the edge cache zero times")
	}
	if skew := p2.Skew(); skew < 1 {
		t.Errorf("pass 2 skew %.2f < 1", skew)
	}

	// The text report renders the cluster section.
	var sb strings.Builder
	rep.WriteText(&sb, false)
	out := sb.String()
	for _, want := range []string{"zipf", "edge hit rate", "skew", "shard-0"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
