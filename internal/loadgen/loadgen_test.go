package loadgen

import (
	"strings"
	"testing"
	"time"

	"evr/internal/scene"
	"evr/internal/server"
	"evr/internal/store"
)

// soakSpec is a tiny deterministic video: 2 segments of 30 frames with one
// slowly-drifting object, cheap enough to ingest and replay under -race.
func soakSpec() scene.VideoSpec {
	return scene.VideoSpec{
		Name:     "SOAK",
		Duration: 2,
		FPS:      30,
		Objects: []scene.ObjectSpec{{
			ID: 0, BaseYaw: 0.3, BasePitch: 0.1, DriftYaw: 0.2,
			Radius: 0.35, Color: [3]byte{220, 40, 40},
		}},
		Complexity: 0.3,
	}
}

func soakIngest() server.IngestConfig {
	cfg := server.DefaultIngestConfig()
	cfg.FullW, cfg.FullH = 48, 24
	cfg.FOVW, cfg.FOVH = 16, 16
	cfg.MaxSegments = 2
	cfg.Codec.SearchRange = 1
	return cfg
}

// soakService ingests soakSpec into a fresh in-process service. StoreDelay
// widens the cache-miss window so that 32 simultaneous first requests for
// the same segment must coalesce rather than racing past each other.
func soakService(t *testing.T, opts server.ServiceOptions) *server.Service {
	t.Helper()
	svc := server.NewServiceOpts(store.New(), opts)
	if _, err := svc.IngestVideo(soakSpec(), soakIngest()); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	return svc
}

// TestSoak32ConcurrentSessions is the CI concurrency soak: 32 users × 2
// passes against an in-process server with the response cache and synthetic
// store latency enabled, run under -race by ci.sh. It asserts the
// serving-path invariants the issue pins down: every session succeeds,
// displayed frames are byte-identical across passes, singleflight coalesces
// concurrent identical misses, and pass 2 is served from the response cache.
func TestSoak32ConcurrentSessions(t *testing.T) {
	opts := server.DefaultServiceOptions()
	opts.StoreDelay = 15 * time.Millisecond
	svc := soakService(t, opts)

	baseURL, shutdown, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	const users = 32
	rep, err := Run(Config{
		BaseURL: baseURL,
		Spec:    soakSpec(),
		Users:   users,
		Passes:  2,
		// 1/32 of the panel keeps 64 pixel-exact sessions affordable
		// under -race; the checksums still cover every displayed pixel.
		ViewportScale: 32,
		Service:       svc,
	})
	if err != nil {
		t.Fatal(err)
	}

	if fails := rep.Failures(); len(fails) != 0 {
		t.Fatalf("%d/%d sessions failed, first: user %d pass %d: %v",
			len(fails), len(rep.Results), fails[0].User, fails[0].Pass, fails[0].Err)
	}
	if len(rep.Results) != users*2 {
		t.Fatalf("got %d results, want %d", len(rep.Results), users*2)
	}

	// Determinism: each user's displayed frames are byte-identical pass to
	// pass — the caches and the concurrency never change pixels.
	byUser := map[int]map[int]uint64{}
	for _, r := range rep.Results {
		if byUser[r.User] == nil {
			byUser[r.User] = map[int]uint64{}
		}
		byUser[r.User][r.Pass] = r.Checksum
	}
	for u := 0; u < users; u++ {
		if byUser[u][1] != byUser[u][2] {
			t.Errorf("user %d frames differ across passes: %#x vs %#x", u, byUser[u][1], byUser[u][2])
		}
		if byUser[u][1] == 0 {
			t.Errorf("user %d produced no frames", u)
		}
	}

	// Every frame is either a FOV hit or a fallback miss.
	for _, ps := range rep.PerPass {
		if ps.Frames == 0 {
			t.Fatalf("pass %d rendered no frames", ps.Pass)
		}
		if ps.Hits+ps.Misses != ps.Frames {
			t.Errorf("pass %d: hits %d + misses %d != frames %d", ps.Pass, ps.Hits, ps.Misses, ps.Frames)
		}
		if ps.Server == nil {
			t.Fatalf("pass %d: no server-side delta for in-process target", ps.Pass)
		}
	}

	// Singleflight: 32 users fetch the same manifest and segments at once
	// while the store is slow, so concurrent identical misses must coalesce.
	p1 := rep.PerPass[0].Server
	if p1.CacheCoalesced == 0 {
		t.Error("pass 1 coalesced no concurrent identical misses")
	}
	// Response cache: pass 2 replays the same traces through fresh players
	// (cold client caches), so the server must serve it from cache.
	p2 := rep.PerPass[1].Server
	if p2.CacheHits == 0 {
		t.Error("pass 2 got no server response-cache hits")
	}
	if p2.CacheMisses != 0 {
		t.Errorf("pass 2 missed the response cache %d times", p2.CacheMisses)
	}

	// Latency quantiles: monotone and bounded below by the store delay on
	// at least the max (pass-1 misses pay StoreDelay).
	l := rep.Latency
	if l.Requests == 0 {
		t.Fatal("no requests measured")
	}
	if l.P50 < 0 || l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max {
		t.Errorf("latency quantiles not monotone: p50 %v p95 %v p99 %v max %v", l.P50, l.P95, l.P99, l.Max)
	}
	if l.Max < opts.StoreDelay {
		t.Errorf("max latency %v below the synthetic store delay %v", l.Max, opts.StoreDelay)
	}

	// The text report renders without panicking and mentions the headline
	// numbers the CLI is specified to print.
	var sb strings.Builder
	rep.WriteText(&sb, true)
	out := sb.String()
	for _, want := range []string{"p50", "p95", "p99", "FOV hit", "coalesced", "per-user FOV-hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

// TestRunRejectsBadConfig pins the validate() edges.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://x", Video: "RS", Users: 0}); err == nil {
		t.Error("Users=0 accepted")
	}
	if _, err := Run(Config{Video: "RS", Users: 1}); err == nil {
		t.Error("empty BaseURL accepted")
	}
	if _, err := Run(Config{BaseURL: "http://x", Video: "no-such-video", Users: 1}); err == nil {
		t.Error("unknown video accepted")
	}
}

// TestServeRoundTrip exercises the in-process listener helper on its own.
func TestServeRoundTrip(t *testing.T) {
	svc := soakService(t, server.DefaultServiceOptions())
	baseURL, shutdown, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	rep, err := Run(Config{
		BaseURL:       baseURL,
		Spec:          soakSpec(),
		Users:         2,
		Segments:      1,
		ViewportScale: 32,
		Service:       svc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures()) != 0 {
		t.Fatalf("failures: %v", rep.Failures())
	}
	if rep.PerPass[0].Frames != 2*30 {
		t.Errorf("2 users × 1 segment = %d frames, want 60", rep.PerPass[0].Frames)
	}
}
