// Package loadgen is the multi-user load harness for the EVR serving
// path: it spins up N synthetic users, each replaying their deterministic
// head trace (internal/headtrace) through the real HTTP client fetch layer
// and player against an in-process or remote EVR server, and reports
// per-user FOV-hit rates, request-latency quantiles, cache effectiveness
// on both sides of the wire, and aggregate throughput.
//
// The same engine drives the evrload CLI and the CI concurrency soak: the
// driver is deterministic per (video, user) — every pass replays identical
// traces, so displayed-frame checksums must match pass to pass, which is
// how the soak proves the serving path's caches never change pixels.
package loadgen

import (
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sync"
	"time"

	"evr/internal/client"
	"evr/internal/cluster"
	"evr/internal/frame"
	"evr/internal/headtrace"
	"evr/internal/hmd"
	"evr/internal/scene"
	"evr/internal/server"
	"evr/internal/telemetry"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the target server. Required; Serve starts an in-process
	// one.
	BaseURL string
	// Video names the catalog video whose traces the users replay.
	Video string
	// Spec optionally overrides the catalog lookup with an explicit video
	// spec (Spec.Name non-empty). The spec must match what the target
	// server ingested, because head traces derive from it.
	Spec scene.VideoSpec
	// Users is the number of concurrent sessions per pass.
	Users int
	// Passes replays the whole user set this many times (≥ 1). Players
	// are fresh each pass — client caches start cold — so pass 2 onward
	// measures the server-side response cache, not the client's.
	Passes int
	// Segments bounds each playback (0 = all published segments).
	Segments int
	// ViewportScale shrinks rendered viewports (0 = the player default).
	ViewportScale int
	// UseHAR renders FOV misses on the PTE accelerator.
	UseHAR bool
	// Resilient survives corrupt payloads instead of aborting a session.
	Resilient bool
	// RenderWorkers bounds each player's render pool. 0 = 1: with N
	// players already running, per-player fan-out oversubscribes the host.
	RenderWorkers int
	// Fetch tunes each session's fetch layer. nil = client defaults.
	Fetch *client.FetchConfig
	// HTTP optionally overrides the shared HTTP client. nil builds one
	// transport sized for Users concurrent sessions; sharing it across
	// players is deliberate — connection reuse is what a real multi-user
	// edge sees.
	HTTP *http.Client
	// Service, when the target is in-process, lets the report include
	// server-side response-cache and admission deltas per pass.
	Service *server.Service
	// Cluster, when the target is an in-process routed cluster, lets the
	// report include per-shard load skew, reroute counts, and edge-cache
	// deltas per pass. Mutually composable with Service (leave Service nil
	// for cluster targets; shards carry their own response caches).
	Cluster *cluster.Cluster
	// Specs is the multi-video catalog Zipf mode draws from (rank = index:
	// Specs[0] is the most popular). Empty falls back to Spec/Video. Every
	// spec must match what the target ingested.
	Specs []scene.VideoSpec
	// ZipfExponent, when > 0, assigns each user a video from Specs under a
	// Zipf popularity law with this exponent — the skewed request mix the
	// edge cache exists to absorb. 0 round-robins users across Specs.
	ZipfExponent float64
	// OnPassStart, when set, runs before each pass's sessions launch —
	// the hook evrload's mid-run shard kill uses.
	OnPassStart func(pass int)
	// Classes, when non-empty, runs a heterogeneous fleet: each class
	// contributes its own user count, video, delivery mode, PTE bitwidth,
	// cache budget, and modeled link, and the report carries per-class
	// aggregates. Users/Video/Spec/Specs/ZipfExponent are ignored.
	Classes []ClassSpec
	// WrapTransport, when set, wraps each user's HTTP transport — the
	// chaos engine's per-client fault-injection hook. The wrapper sits
	// under the latency-timing layer, so injected delay and loss show up
	// in the report's latency quantiles like real network trouble would.
	WrapTransport func(user int, class string, base http.RoundTripper) http.RoundTripper
	// Delivery, when non-nil, runs every session in the viewport-adaptive
	// tiled delivery mode with this config (the target must have been
	// ingested with tile streams for it to engage).
	Delivery *client.TiledConfig
	// FrameSink, when set, receives each successful session's displayed
	// frames — the hook evrload's frontier sweep uses to score viewport
	// PSNR across delivery modes. Called concurrently from session
	// goroutines; the sink must be safe for concurrent use.
	FrameSink func(user, pass int, video string, frames []*frame.Frame)
}

// UserResult is one session's outcome.
type UserResult struct {
	User    int
	Pass    int
	Class   string // the user's fleet class, "" outside Classes mode
	Video   string // the video this user plays (varies in Zipf mode)
	Err     error
	Elapsed time.Duration
	Stats   client.PlaybackStats
	// Checksum is an FNV-1a hash of every displayed frame's pixels, in
	// order. Identical traces must produce identical checksums regardless
	// of cache configuration or concurrency — the soak's core assertion.
	Checksum uint64
}

// HitRate returns the session's FOV-hit fraction.
func (r UserResult) HitRate() float64 {
	if r.Stats.Frames == 0 {
		return 0
	}
	return float64(r.Stats.Hits) / float64(r.Stats.Frames)
}

// ServerDelta is the change in server-side serving counters over one pass
// (in-process targets only).
type ServerDelta struct {
	CacheHits      int64
	CacheMisses    int64
	CacheCoalesced int64
	Throttled      int64
}

// PassStats aggregates one pass.
type PassStats struct {
	Pass         int
	Elapsed      time.Duration
	Sessions     int
	Failures     int
	Frames       int
	Hits         int
	Misses       int
	HitRate      float64
	BytesFetched int64
	ClientHits   int // client-side cache hits (incl. singleflight joins)
	Retries      int
	FramesPerSec float64
	Server       *ServerDelta  // nil for remote targets
	Cluster      *ClusterDelta // nil for non-cluster targets
	// Tiled-delivery aggregates (all zero unless Config.Delivery engaged).
	ModeFOVSegments   int
	ModeTiledSegments int
	ModeOrigSegments  int
	TiledTiles        int
	TiledTileErrors   int
	MispredictedTiles int
	ModeledStalls     int
	ModeledStallSec   float64
	ModeledBytes      int64
	// P50/P99 are this pass's request-latency quantiles (histogram-delta
	// estimates) — how a mid-run shard kill shows up as a tail-latency
	// bump without corrupting frames.
	P50 time.Duration
	P99 time.Duration
}

// LatencySummary is the aggregate HTTP request-latency view, measured at
// the transport across every session and pass (retries count per attempt).
type LatencySummary struct {
	Requests int64
	Errors   int64 // transport errors and non-2xx responses
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// Report is the full outcome of a load run.
type Report struct {
	Video    string
	Videos   []string // full catalog when Zipf/multi-video mode is on
	Zipf     float64  // popularity exponent, 0 when uniform
	Users    int
	Passes   int
	Segments int
	Results  []UserResult // Users × Passes entries
	PerPass  []PassStats
	Classes  []ClassStats // per-class aggregates, empty outside Classes mode
	Latency  LatencySummary
	Elapsed  time.Duration
}

// Failures returns the failed sessions.
func (r *Report) Failures() []UserResult {
	var out []UserResult
	for _, u := range r.Results {
		if u.Err != nil {
			out = append(out, u)
		}
	}
	return out
}

// timingTransport observes every HTTP round trip into a shared latency
// histogram — the request-latency distribution the whole report quotes.
// The histogram and counters are pointers so per-user instances (built
// when WrapTransport stacks a fault layer under the timing layer) all
// feed the same distribution.
type timingTransport struct {
	base     http.RoundTripper
	hist     *telemetry.Histogram
	requests *telemetry.Counter
	errors   *telemetry.Counter
}

func (t *timingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	start := time.Now()
	resp, err := t.base.RoundTrip(req)
	t.hist.ObserveDuration(time.Since(start))
	t.requests.Inc()
	if err != nil || resp.StatusCode >= 400 {
		t.errors.Inc()
	}
	return resp, err
}

// Serve exposes a service on an ephemeral loopback listener, returning its
// base URL and a shutdown func. It is how evrload and the soak test run
// "against an in-process server" without leaving the process.
func Serve(svc *server.Service) (baseURL string, shutdown func(), err error) {
	return ServeHandler(svc.Handler())
}

// ServeHandler is Serve for any handler — the routed-cluster target
// (internal/cluster's router) uses it. The shutdown func drains
// gracefully: in-flight requests get up to 5 s to complete before the
// server is torn down hard. (It used to call http.Server.Close, which
// dropped in-flight requests on the floor and salted multi-pass runs with
// spurious transport errors when a pass's tail requests overlapped the
// teardown.)
func ServeHandler(h http.Handler) (baseURL string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("loadgen: listen: %w", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // closed via shutdown
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close() // drain deadline blown: drop what's left
		}
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// validate fills defaults and rejects unusable configs, returning the
// video catalog users draw from (one entry outside multi-video mode).
func (c *Config) validate() ([]scene.VideoSpec, error) {
	if c.Users < 1 {
		return nil, fmt.Errorf("loadgen: Users %d must be ≥ 1", c.Users)
	}
	if c.Passes < 1 {
		c.Passes = 1
	}
	if c.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required (use Serve for an in-process server)")
	}
	if c.ZipfExponent < 0 {
		return nil, fmt.Errorf("loadgen: ZipfExponent %v must be ≥ 0", c.ZipfExponent)
	}
	if len(c.Specs) > 0 {
		for _, s := range c.Specs {
			if s.Name == "" {
				return nil, fmt.Errorf("loadgen: Specs entries must be named")
			}
		}
		return c.Specs, nil
	}
	spec := c.Spec
	if spec.Name == "" {
		v, ok := scene.ByName(c.Video)
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown video %q", c.Video)
		}
		spec = v
	}
	return []scene.VideoSpec{spec}, nil
}

// Run executes the load: Passes waves of Users concurrent playback
// sessions. Setup failures return an error; per-session failures land in
// the report (and in Report.Failures) so one bad session doesn't mask the
// other N-1 measurements.
func Run(cfg Config) (*Report, error) {
	var catalog []scene.VideoSpec
	var fleet *fleetState
	var err error
	if len(cfg.Classes) > 0 {
		total, err := validateClasses(cfg.Classes)
		if err != nil {
			return nil, err
		}
		cfg.Users = total
		if cfg.Passes < 1 {
			cfg.Passes = 1
		}
		if cfg.BaseURL == "" {
			return nil, fmt.Errorf("loadgen: BaseURL required (use Serve for an in-process server)")
		}
		fleet, err = newFleetState(cfg.Classes, total)
		if err != nil {
			return nil, err
		}
	} else {
		catalog, err = cfg.validate()
		if err != nil {
			return nil, err
		}
	}
	fetch := client.DefaultFetchConfig()
	if cfg.Fetch != nil {
		fetch = *cfg.Fetch
	}

	tt := &timingTransport{
		base: &http.Transport{
			MaxIdleConns:        cfg.Users * 2,
			MaxIdleConnsPerHost: cfg.Users * 2,
		},
		hist:     telemetry.NewHistogram(telemetry.DefaultLatencyBuckets()),
		requests: &telemetry.Counter{},
		errors:   &telemetry.Counter{},
	}
	httpClient := cfg.HTTP
	if httpClient == nil {
		httpClient = &http.Client{Transport: tt}
	} else {
		// Keep the caller's client but still measure through it.
		base := httpClient.Transport
		if base == nil {
			base = http.DefaultTransport
		}
		tt.base = base
		wrapped := *httpClient
		wrapped.Transport = tt
		httpClient = &wrapped
	}

	// Each user is pinned to one video — class-assigned in fleet mode,
	// Zipf-popular when an exponent is set, round-robin otherwise — and
	// traces are generated once and replayed every pass: determinism is
	// the property the soak leans on.
	assigned := make([]scene.VideoSpec, cfg.Users)
	traces := make([]headtrace.Trace, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		switch {
		case fleet != nil:
			assigned[u] = fleet.specs[fleet.byUser[u]]
		case cfg.ZipfExponent > 0:
			assigned[u] = catalog[zipfAssign(u, len(catalog), cfg.ZipfExponent)]
		default:
			assigned[u] = catalog[u%len(catalog)]
		}
		traces[u] = headtrace.Generate(assigned[u], u)
	}

	// Per-user HTTP clients exist only when a fault layer wraps each
	// user's transport; the timing layer on top still feeds one shared
	// histogram, so the report's latency view spans the whole fleet.
	clients := make([]*http.Client, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		if cfg.WrapTransport == nil {
			clients[u] = httpClient
			continue
		}
		className := ""
		if fleet != nil {
			className = cfg.Classes[fleet.byUser[u]].Name
		}
		clients[u] = &http.Client{Transport: &timingTransport{
			base:     cfg.WrapTransport(u, className, tt.base),
			hist:     tt.hist,
			requests: tt.requests,
			errors:   tt.errors,
		}}
	}

	var rep *Report
	if fleet != nil {
		rep = &Report{Video: fleet.specs[0].Name,
			Users: cfg.Users, Passes: cfg.Passes, Segments: cfg.Segments}
		if vids := classVideos(fleet); len(vids) > 1 {
			rep.Videos = vids
		}
	} else {
		rep = &Report{Video: catalog[0].Name, Zipf: cfg.ZipfExponent,
			Users: cfg.Users, Passes: cfg.Passes, Segments: cfg.Segments}
		if len(catalog) > 1 {
			for _, s := range catalog {
				rep.Videos = append(rep.Videos, s.Name)
			}
		}
	}
	start := time.Now()
	for pass := 1; pass <= cfg.Passes; pass++ {
		if cfg.OnPassStart != nil {
			cfg.OnPassStart(pass)
		}
		var before server.RespCacheStats
		var beforeThrottled int64
		serverSide := false
		if cfg.Service != nil {
			before, serverSide = cfg.Service.RespCacheStats()
			beforeThrottled = cfg.Service.Throttled()
		}
		var beforeCluster cluster.Stats
		if cfg.Cluster != nil {
			beforeCluster = cfg.Cluster.Stats()
		}
		beforeLatency := tt.hist.Snapshot()

		results := make([]UserResult, cfg.Users)
		passStart := time.Now()
		var wg sync.WaitGroup
		for u := 0; u < cfg.Users; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				var cs *ClassSpec
				var behind *telemetry.Histogram
				if fleet != nil {
					cs = &cfg.Classes[fleet.byUser[u]]
					behind = fleet.behind[fleet.byUser[u]]
				}
				results[u] = runSession(cfg, fetch, clients[u], assigned[u].Name, traces[u], u, pass, cs, behind)
			}(u)
		}
		wg.Wait()
		passElapsed := time.Since(passStart)

		ps := PassStats{Pass: pass, Elapsed: passElapsed, Sessions: cfg.Users}
		for _, r := range results {
			if r.Err != nil {
				ps.Failures++
				continue
			}
			ps.Frames += r.Stats.Frames
			ps.Hits += r.Stats.Hits
			ps.Misses += r.Stats.Misses
			ps.BytesFetched += r.Stats.BytesFetched
			ps.ClientHits += r.Stats.CacheHits
			ps.Retries += r.Stats.Retries
			ps.ModeFOVSegments += r.Stats.ModeFOVSegments
			ps.ModeTiledSegments += r.Stats.ModeTiledSegments
			ps.ModeOrigSegments += r.Stats.ModeOrigSegments
			ps.TiledTiles += r.Stats.TiledTiles
			ps.TiledTileErrors += r.Stats.TiledTileErrors
			ps.MispredictedTiles += r.Stats.MispredictedTiles
			ps.ModeledStalls += r.Stats.ModeledStalls
			ps.ModeledStallSec += r.Stats.ModeledStallSec
			ps.ModeledBytes += r.Stats.ModeledBytes
		}
		if ps.Frames > 0 {
			ps.HitRate = float64(ps.Hits) / float64(ps.Frames)
			ps.FramesPerSec = float64(ps.Frames) / passElapsed.Seconds()
		}
		if cfg.Service != nil {
			after, _ := cfg.Service.RespCacheStats()
			delta := &ServerDelta{Throttled: cfg.Service.Throttled() - beforeThrottled}
			if serverSide {
				delta.CacheHits = after.Hits - before.Hits
				delta.CacheMisses = after.Misses - before.Misses
				delta.CacheCoalesced = after.Coalesced - before.Coalesced
			}
			ps.Server = delta
		}
		if cfg.Cluster != nil {
			ps.Cluster = clusterDelta(beforeCluster, cfg.Cluster.Stats())
		}
		passLatency := deltaSnapshot(beforeLatency, tt.hist.Snapshot())
		ps.P50 = time.Duration(passLatency.Quantile(0.50) * float64(time.Second))
		ps.P99 = time.Duration(passLatency.Quantile(0.99) * float64(time.Second))
		rep.PerPass = append(rep.PerPass, ps)
		rep.Results = append(rep.Results, results...)
	}
	rep.Elapsed = time.Since(start)
	if fleet != nil {
		rep.Classes = aggregateClasses(fleet, rep.Results, cfg)
	}

	snap := tt.hist.Snapshot()
	rep.Latency = LatencySummary{
		Requests: tt.requests.Value(),
		Errors:   tt.errors.Value(),
		P50:      time.Duration(snap.Quantile(0.50) * float64(time.Second)),
		P95:      time.Duration(snap.Quantile(0.95) * float64(time.Second)),
		P99:      time.Duration(snap.Quantile(0.99) * float64(time.Second)),
		Max:      time.Duration(snap.Max * float64(time.Second)),
	}
	return rep, nil
}

// runSession plays one user's trace through a fresh player on the shared
// (or per-user fault-wrapped) HTTP client and summarizes it. cs carries
// the user's fleet class profile, nil outside Classes mode.
func runSession(cfg Config, fetch client.FetchConfig, httpClient *http.Client, video string, trace headtrace.Trace, user, pass int, cs *ClassSpec, behind *telemetry.Histogram) UserResult {
	p := client.NewPlayer(cfg.BaseURL)
	p.HTTP = httpClient
	p.Fetch = fetch
	p.UseHAR = cfg.UseHAR
	p.Resilient = cfg.Resilient
	if cfg.ViewportScale > 0 {
		p.ViewportScale = cfg.ViewportScale
	}
	p.Workers = cfg.RenderWorkers
	if p.Workers == 0 {
		p.Workers = 1
	}
	if cfg.Delivery != nil {
		p.Tiled = *cfg.Delivery
	}
	className := ""
	if cs != nil {
		className = cs.Name
		p.UseHAR = cs.UseHAR
		p.PTEFormat = cs.PTEFormat
		if cs.CacheSegments > 0 {
			p.Fetch.CacheSegments = cs.CacheSegments
		}
		if cs.ViewportScale > 0 {
			p.ViewportScale = cs.ViewportScale
		}
		if tc := cs.tiledConfig(); tc != nil {
			p.Tiled = *tc
		}
		p.Fetch.BehindLive = behind
	}
	start := time.Now()
	stats, frames, err := p.Play(video, hmd.NewIMU(trace), cfg.Segments)
	if err == nil && cfg.FrameSink != nil {
		cfg.FrameSink(user, pass, video, frames)
	}
	return UserResult{
		User:     user,
		Pass:     pass,
		Class:    className,
		Video:    video,
		Err:      err,
		Elapsed:  time.Since(start),
		Stats:    stats,
		Checksum: ChecksumFrames(frames),
	}
}

// ChecksumFrames hashes displayed frames (dimensions and pixels, in
// order) — the pass-to-pass and config-to-config byte-identity probe.
func ChecksumFrames(frames []*frame.Frame) uint64 {
	h := fnv.New64a()
	var dims [8]byte
	for _, f := range frames {
		dims[0], dims[1], dims[2], dims[3] = byte(f.W), byte(f.W>>8), byte(f.W>>16), byte(f.W>>24)
		dims[4], dims[5], dims[6], dims[7] = byte(f.H), byte(f.H>>8), byte(f.H>>16), byte(f.H>>24)
		h.Write(dims[:]) //nolint:errcheck // fnv never fails
		h.Write(f.Pix)   //nolint:errcheck
	}
	return h.Sum64()
}
