package loadgen

import "testing"

// TestZipfAssignDeterministicAndSkewed pins the popularity draw: stable
// per user, in range, and monotonically favoring low ranks.
func TestZipfAssignDeterministicAndSkewed(t *testing.T) {
	const n, users = 5, 4000
	counts := make([]int, n)
	for u := 0; u < users; u++ {
		i := zipfAssign(u, n, 1.1)
		if i != zipfAssign(u, n, 1.1) {
			t.Fatalf("user %d: draw not deterministic", u)
		}
		if i < 0 || i >= n {
			t.Fatalf("user %d: index %d out of range", u, i)
		}
		counts[i]++
	}
	for i := 1; i < n; i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("rank %d more popular than rank %d: %v", i, i-1, counts)
		}
	}
	// Zipf(1.1) over 5 ranks gives the head ≈ 44% of the mass; a uniform
	// draw gives 20%. Anything over 35% proves the law is applied.
	if frac := float64(counts[0]) / users; frac < 0.35 {
		t.Errorf("head video drew %.1f%% of users, want Zipf-skewed (> 35%%)", 100*frac)
	}
}

// TestZipfAssignEdges pins the degenerate parameters.
func TestZipfAssignEdges(t *testing.T) {
	if got := zipfAssign(9, 1, 1.0); got != 0 {
		t.Errorf("n=1 draw = %d", got)
	}
	if got := zipfAssign(3, 0, 1.0); got != 0 {
		t.Errorf("n=0 draw = %d", got)
	}
}

// TestClusterDeltaSkew pins the skew summary over shard deltas.
func TestClusterDeltaSkew(t *testing.T) {
	d := &ClusterDelta{Shards: []ShardDelta{
		{Name: "shard-0", Alive: true, Requests: 300},
		{Name: "shard-1", Alive: true, Requests: 100},
		{Name: "shard-2", Alive: false, Requests: 0}, // dead all pass: excluded
	}}
	if got := d.Skew(); got != 1.5 {
		t.Errorf("skew = %v, want 1.5 (300 over mean 200)", got)
	}
	if got := (&ClusterDelta{}).Skew(); got != 0 {
		t.Errorf("empty skew = %v", got)
	}
}
