package loadgen

import (
	"net/http"
	"sync"
	"testing"

	"evr/internal/server"
)

// TestFleetClassesRunAndAggregate is the heterogeneous-fleet gate: a run
// with Classes set assigns users to classes in declaration order, threads
// each user's class through WrapTransport, and reports per-class stats
// whose totals reconcile with the flat results.
func TestFleetClassesRunAndAggregate(t *testing.T) {
	svc := soakService(t, server.DefaultServiceOptions())
	baseURL, shutdown, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	var mu sync.Mutex
	wrapped := map[int]string{}
	rep, err := Run(Config{
		BaseURL:       baseURL,
		Passes:        2,
		ViewportScale: 32,
		Service:       svc,
		Classes: []ClassSpec{
			{Name: "har-fov", Users: 2, Video: "SOAK", Spec: soakSpec(), UseHAR: true, CacheSegments: 4},
			{Name: "sw-orig", Users: 3, Video: "SOAK", Spec: soakSpec(), Delivery: "fov", Link: "dsl20"},
		},
		WrapTransport: func(user int, class string, base http.RoundTripper) http.RoundTripper {
			mu.Lock()
			wrapped[user] = class
			mu.Unlock()
			return base
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fails := rep.Failures(); len(fails) != 0 {
		t.Fatalf("%d sessions failed, first: %v", len(fails), fails[0].Err)
	}
	if len(rep.Results) != 5*2 {
		t.Fatalf("got %d results, want 10", len(rep.Results))
	}

	// Declaration-order assignment: users 0–1 are har-fov, 2–4 sw-orig.
	for _, r := range rep.Results {
		want := "har-fov"
		if r.User >= 2 {
			want = "sw-orig"
		}
		if r.Class != want {
			t.Errorf("user %d labeled class %q, want %q", r.User, r.Class, want)
		}
	}
	mu.Lock()
	for user, class := range wrapped {
		want := "har-fov"
		if user >= 2 {
			want = "sw-orig"
		}
		if class != want {
			t.Errorf("WrapTransport saw user %d as %q, want %q", user, class, want)
		}
	}
	nWrapped := len(wrapped)
	mu.Unlock()
	if nWrapped != 5 {
		t.Errorf("WrapTransport called for %d users, want 5", nWrapped)
	}

	if len(rep.Classes) != 2 {
		t.Fatalf("report has %d classes, want 2", len(rep.Classes))
	}
	har, ok := rep.ClassByName("har-fov")
	if !ok || har.Users != 2 || har.Sessions != 4 {
		t.Errorf("har-fov stats: ok=%v users=%d sessions=%d, want 2 users × 2 passes", ok, har.Users, har.Sessions)
	}
	sw, ok := rep.ClassByName("sw-orig")
	if !ok || sw.Users != 3 || sw.Sessions != 6 {
		t.Errorf("sw-orig stats: ok=%v users=%d sessions=%d, want 3 users × 2 passes", ok, sw.Users, sw.Sessions)
	}
	var frames, bytes int
	for _, r := range rep.Results {
		frames += r.Stats.Frames
		bytes += int(r.Stats.BytesFetched)
	}
	if got := har.Frames + sw.Frames; got != frames {
		t.Errorf("class frames sum %d != flat sum %d", got, frames)
	}
	if got := int(har.BytesFetched + sw.BytesFetched); got != bytes {
		t.Errorf("class bytes sum %d != flat sum %d", got, bytes)
	}
	if har.EnergyJ <= 0 || sw.EnergyJ <= 0 {
		t.Errorf("modeled energy missing: har %.3fJ sw %.3fJ", har.EnergyJ, sw.EnergyJ)
	}
	if sw.LiveSegments != 0 || sw.BehindLiveP99Sec != 0 {
		t.Errorf("VOD class reported live freshness: %d segs p99 %.3fs", sw.LiveSegments, sw.BehindLiveP99Sec)
	}

	// Per-user determinism holds inside a fleet too.
	byUser := map[int]map[int]uint64{}
	for _, r := range rep.Results {
		if byUser[r.User] == nil {
			byUser[r.User] = map[int]uint64{}
		}
		byUser[r.User][r.Pass] = r.Checksum
	}
	for u := 0; u < 5; u++ {
		if byUser[u][1] != byUser[u][2] || byUser[u][1] == 0 {
			t.Errorf("user %d checksums: pass1 %#x pass2 %#x", u, byUser[u][1], byUser[u][2])
		}
	}
}

// TestFleetValidation pins the fleet config gate.
func TestFleetValidation(t *testing.T) {
	cases := []struct {
		name    string
		classes []ClassSpec
	}{
		{"missing name", []ClassSpec{{Users: 1, Video: "RS"}}},
		{"dup name", []ClassSpec{{Name: "a", Users: 1, Video: "RS"}, {Name: "a", Users: 1, Video: "RS"}}},
		{"zero users", []ClassSpec{{Name: "a", Users: 0, Video: "RS"}}},
		{"bad delivery", []ClassSpec{{Name: "a", Users: 1, Video: "RS", Delivery: "warp"}}},
		{"bad link", []ClassSpec{{Name: "a", Users: 1, Video: "RS", Link: "smoke-signal"}}},
		{"bad video", []ClassSpec{{Name: "a", Users: 1, Video: "NOPE"}}},
	}
	for _, tc := range cases {
		if _, err := validateClasses(tc.classes); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := Run(Config{Classes: []ClassSpec{{Name: "a", Users: 1, Video: "RS"}}}); err == nil {
		t.Error("fleet run without BaseURL accepted")
	}
	total, err := validateClasses([]ClassSpec{
		{Name: "a", Users: 2, Video: "RS"},
		{Name: "b", Users: 3, Video: "Paris", Delivery: "policy", Link: "lte50"},
	})
	if err != nil || total != 5 {
		t.Errorf("valid fleet rejected: total=%d err=%v", total, err)
	}
}
