package delivery

import (
	"bytes"
	"testing"

	"evr/internal/codec"
)

func sampleTile(t *testing.T) *TilePayload {
	t.Helper()
	return &TilePayload{
		Cols: 4, Rows: 2, Tile: 5, Rung: 1,
		Bits: &codec.Bitstream{
			W: 24, H: 16,
			Frames: [][]byte{{1, 2, 3}, {}, {9}},
			Types:  []codec.FrameType{codec.IFrame, codec.PFrame, codec.PFrame},
		},
	}
}

func TestTileRoundTrip(t *testing.T) {
	p := sampleTile(t)
	data, err := MarshalTile(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	q, err := UnmarshalTile(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.Cols != p.Cols || q.Rows != p.Rows || q.Tile != p.Tile || q.Rung != p.Rung {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if q.Bits.W != p.Bits.W || q.Bits.H != p.Bits.H || len(q.Bits.Frames) != len(p.Bits.Frames) {
		t.Fatalf("bitstream mismatch")
	}
	for i := range p.Bits.Frames {
		if !bytes.Equal(q.Bits.Frames[i], p.Bits.Frames[i]) || q.Bits.Types[i] != p.Bits.Types[i] {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	data2, err := MarshalTile(q)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("re-marshal not byte-identical")
	}
}

func TestMarshalTileRejects(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*TilePayload)
	}{
		{"nil bits", func(p *TilePayload) { p.Bits = nil }},
		{"zero grid", func(p *TilePayload) { p.Cols = 0 }},
		{"grid too big", func(p *TilePayload) { p.Cols = 256 }},
		{"tile out of grid", func(p *TilePayload) { p.Tile = 8 }},
		{"negative tile", func(p *TilePayload) { p.Tile = -1 }},
		{"rung out of range", func(p *TilePayload) { p.Rung = 256 }},
		{"oversize dims", func(p *TilePayload) { p.Bits.W = 1 << 16 }},
		{"type count mismatch", func(p *TilePayload) { p.Bits.Types = p.Bits.Types[:1] }},
		{"unknown frame type", func(p *TilePayload) { p.Bits.Types[0] = 'X' }},
	}
	for _, tc := range cases {
		p := sampleTile(t)
		tc.mod(p)
		if _, err := MarshalTile(p); err == nil {
			t.Errorf("%s: marshal accepted bad payload", tc.name)
		}
	}
}

func TestUnmarshalTileRejects(t *testing.T) {
	good, err := MarshalTile(sampleTile(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", []byte("EV")},
		{"bad magic", append([]byte("EVT9"), good[4:]...)},
		{"truncated header", good[:8]},
		{"truncated frame", good[:len(good)-1]},
		{"trailing bytes", append(append([]byte{}, good...), 0)},
	}
	for _, tc := range cases {
		if _, err := UnmarshalTile(tc.data); err == nil {
			t.Errorf("%s: unmarshal accepted bad payload", tc.name)
		}
	}

	// Tile index outside the claimed grid.
	bad := append([]byte{}, good...)
	bad[4], bad[5] = 1, 1 // 1×1 grid, tile 5 from the sample now out of range
	if _, err := UnmarshalTile(bad); err == nil {
		t.Error("out-of-grid tile accepted")
	}
	// Zero grid.
	bad = append([]byte{}, good...)
	bad[4], bad[5] = 0, 0
	if _, err := UnmarshalTile(bad); err == nil {
		t.Error("zero grid accepted")
	}
}

// FuzzUnmarshalTile pins the wire format's canonical property: any payload
// that parses must re-marshal to the identical bytes.
func FuzzUnmarshalTile(f *testing.F) {
	p := &TilePayload{
		Cols: 2, Rows: 2, Tile: 3, Rung: 0,
		Bits: &codec.Bitstream{W: 8, H: 8,
			Frames: [][]byte{{0xAA}},
			Types:  []codec.FrameType{codec.IFrame}},
	}
	seed, err := MarshalTile(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("EVT1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := UnmarshalTile(data)
		if err != nil {
			return
		}
		out, err := MarshalTile(q)
		if err != nil {
			t.Fatalf("parsed payload failed to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not byte-identical: %d in, %d out", len(data), len(out))
		}
	})
}
