package delivery

import (
	"math"
	"testing"

	"evr/internal/geom"
	"evr/internal/netsim"
)

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeAuto:  "auto",
		ModeFOV:   "fov",
		ModeTiled: "tiled",
		ModeOrig:  "orig",
		Mode(9):   "mode(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy(1.0).Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []PolicyConfig{
		{FOVConfidenceMin: -0.1, BandwidthSafety: 0.8, SegmentDuration: 1, Link: netsim.WiFi300()},
		{FOVConfidenceMin: 0.5, BandwidthSafety: 0, SegmentDuration: 1, Link: netsim.WiFi300()},
		{FOVConfidenceMin: 0.5, BandwidthSafety: 0.8, SegmentDuration: 0, Link: netsim.WiFi300()},
		{FOVConfidenceMin: 0.5, BandwidthSafety: 0.8, SegmentDuration: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestDecideThreeWay(t *testing.T) {
	p := DefaultPolicy(1.0)
	budget := p.ByteBudget()
	if budget <= 0 {
		t.Fatalf("budget = %d, want positive", budget)
	}

	// Confident prediction + affordable FOV stream → FOV.
	d := p.Decide(SegmentInputs{FOVBytes: 1000, FOVConfidence: 0.9, TiledBytes: 5000, OrigBytes: 20000})
	if d.Mode != ModeFOV {
		t.Errorf("confident fov: got %v (%s)", d.Mode, d.Reason)
	}
	// Low confidence → tiles when they beat orig.
	d = p.Decide(SegmentInputs{FOVBytes: 1000, FOVConfidence: 0.1, TiledBytes: 5000, OrigBytes: 20000})
	if d.Mode != ModeTiled {
		t.Errorf("low confidence: got %v (%s)", d.Mode, d.Reason)
	}
	// Tiles cost more than orig → fall back.
	d = p.Decide(SegmentInputs{FOVConfidence: 0.1, TiledBytes: 30000, OrigBytes: 20000})
	if d.Mode != ModeOrig {
		t.Errorf("expensive tiles: got %v (%s)", d.Mode, d.Reason)
	}
	// No tiles available → orig.
	d = p.Decide(SegmentInputs{FOVConfidence: 0.1, OrigBytes: 20000})
	if d.Mode != ModeOrig {
		t.Errorf("no tiles: got %v (%s)", d.Mode, d.Reason)
	}
	// FOV stream over budget falls through to tiles even when confident.
	d = p.Decide(SegmentInputs{FOVBytes: budget + 1, FOVConfidence: 0.9, TiledBytes: 5000, OrigBytes: 20000})
	if d.Mode != ModeTiled {
		t.Errorf("fov over budget: got %v (%s)", d.Mode, d.Reason)
	}
}

func TestFOVConfidence(t *testing.T) {
	o := geom.Orientation{}
	if c := FOVConfidence(o, o, 0.5); c != 1 {
		t.Errorf("aligned confidence = %v, want 1", c)
	}
	far := geom.Orientation{Yaw: math.Pi / 2}
	if c := FOVConfidence(o, far, 0.5); c != 0 {
		t.Errorf("far confidence = %v, want 0", c)
	}
	mid := geom.Orientation{Yaw: 0.25}
	c := FOVConfidence(o, mid, 0.5)
	if c <= 0 || c >= 1 {
		t.Errorf("mid confidence = %v, want in (0,1)", c)
	}
	if c := FOVConfidence(o, o, 0); c != 0 {
		t.Errorf("zero tolerance confidence = %v, want 0", c)
	}
}

func TestPickTileRungsBudget(t *testing.T) {
	visible := []bool{true, true, true, false}
	tileBytes := [][]int{
		{100, 50, 25},
		{100, 50, 25},
		{100, 50, 25},
		{100, 50, 25},
	}
	dist := []float64{0.1, 0.5, 0.9, 2.0}

	// Unlimited budget: everything at base rung, invisible -1.
	rungs := PickTileRungs(visible, tileBytes, 0, 0, dist)
	want := []int{0, 0, 0, -1}
	for i := range want {
		if rungs[i] != want[i] {
			t.Fatalf("unlimited: rungs = %v, want %v", rungs, want)
		}
	}

	// Budget forces demotion of the farthest visible tile first.
	rungs = PickTileRungs(visible, tileBytes, 0, 250, dist)
	if rungs[3] != -1 {
		t.Fatalf("invisible tile got rung %d", rungs[3])
	}
	total := 0
	for t2 := 0; t2 < 3; t2++ {
		total += tileBytes[t2][rungs[t2]]
	}
	if total > 250 {
		t.Fatalf("total %d exceeds budget 250 (rungs %v)", total, rungs)
	}
	if rungs[2] <= rungs[0] {
		t.Errorf("farthest tile %d should demote before nearest %d: %v", 2, 0, rungs)
	}

	// Impossible budget: everything bottoms out, loop terminates.
	rungs = PickTileRungs(visible, tileBytes, 0, 10, dist)
	for t2 := 0; t2 < 3; t2++ {
		if rungs[t2] != 2 {
			t.Errorf("impossible budget: tile %d at rung %d, want lowest", t2, rungs[t2])
		}
	}

	// Base rung clamped into range.
	rungs = PickTileRungs(visible, tileBytes, 99, 0, dist)
	if rungs[0] != 2 {
		t.Errorf("overlarge base rung = %d, want clamped to 2", rungs[0])
	}
	rungs = PickTileRungs(visible, tileBytes, -5, 0, dist)
	if rungs[0] != 0 {
		t.Errorf("negative base rung = %d, want clamped to 0", rungs[0])
	}
}

func TestPickTileRungsDeterministic(t *testing.T) {
	visible := []bool{true, true, true, true}
	tileBytes := [][]int{{100, 10}, {100, 10}, {100, 10}, {100, 10}}
	dist := []float64{1, 1, 1, 1} // all ties — index order must break them
	a := PickTileRungs(visible, tileBytes, 0, 220, dist)
	b := PickTileRungs(visible, tileBytes, 0, 220, dist)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestDemotePeripheral(t *testing.T) {
	tileBytes := [][]int{
		{100, 50, 25},
		{100, 50, 25},
		{100, 50, 25},
		{100, 50, 25},
		{100, 50},
	}
	rungs := []int{0, 0, 0, -1, 0}
	dist := []float64{0.1, 0.6, 1.3, 0.1, 1.3} // cutoff 0.5: foveal, peripheral, far, (invisible), far
	DemotePeripheral(rungs, tileBytes, dist, 0.5)
	want := []int{0, 1, 2, -1, 1} // tile 4 clamps at its coarsest rung
	for i := range want {
		if rungs[i] != want[i] {
			t.Fatalf("rungs = %v, want %v", rungs, want)
		}
	}

	// cutoff <= 0 is a no-op.
	rungs = []int{0, 0, 0, -1, 0}
	DemotePeripheral(rungs, tileBytes, dist, 0)
	for i, r := range []int{0, 0, 0, -1, 0} {
		if rungs[i] != r {
			t.Fatalf("zero cutoff modified rungs: %v", rungs)
		}
	}
}
