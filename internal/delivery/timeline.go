package delivery

import "evr/internal/netsim"

// Timeline is an incremental playback clock for the tiled client: the same
// buffer/stall model as abr.Simulate, but advanced one segment at a time so
// the Player can consult the live buffer level between fetch decisions.
// Playback starts after the first segment lands (fast start).
type Timeline struct {
	Link            netsim.Link
	SegmentDuration float64

	clock        float64 // downloader wall clock
	playWall     float64 // wall time playback started (valid once started)
	started      bool
	contentReady float64 // seconds of content downloaded

	Stalls       int
	StallSec     float64
	StartupDelay float64
	Bytes        int64
}

// NewTimeline builds a timeline over the given link.
func NewTimeline(link netsim.Link, segmentDuration float64) *Timeline {
	return &Timeline{Link: link, SegmentDuration: segmentDuration}
}

// Buffer returns the seconds of downloaded content not yet played.
func (t *Timeline) Buffer() float64 {
	if !t.started {
		return t.contentReady
	}
	played := t.clock - t.playWall
	if played > t.contentReady {
		played = t.contentReady
	}
	if played < 0 {
		played = 0
	}
	return t.contentReady - played
}

// Advance accounts for one segment of the given wire size landing: the
// clock moves by the modeled transfer time, one segment duration of
// content becomes ready, and any stall shifts the playback reference.
func (t *Timeline) Advance(bytes int64) {
	t.Bytes += bytes
	t.clock += t.Link.TransferSeconds(bytes)
	t.contentReady += t.SegmentDuration

	if !t.started {
		t.started = true
		t.playWall = t.clock
		t.StartupDelay = t.clock
		return
	}
	played := t.clock - t.playWall
	avail := t.contentReady - t.SegmentDuration // before this segment landed
	if played > avail {
		d := played - avail
		t.Stalls++
		t.StallSec += d
		t.playWall += d
	}
}
