package delivery

import (
	"testing"

	"evr/internal/frame"
	"evr/internal/tiling"
)

func flatFrame(w, h int, r, g, b byte) *frame.Frame {
	f := frame.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, r, g, b)
		}
	}
	return f
}

func TestAssembleBackfillAndOverwrite(t *testing.T) {
	g := tiling.Grid{Cols: 2, Rows: 2}
	const w, h = 32, 16
	low := []*frame.Frame{flatFrame(w/2, h/2, 10, 10, 10)}
	tiles := map[int][]*frame.Frame{
		3: {flatFrame(w/2, h/2, 200, 0, 0)}, // bottom-right tile
	}
	out, err := Assemble(g, w, h, low, tiles)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if len(out) != 1 || out[0].W != w || out[0].H != h {
		t.Fatalf("got %d frames, first %dx%d", len(out), out[0].W, out[0].H)
	}
	// Top-left pixel comes from the upscaled backfill.
	if r, _, _ := out[0].At(0, 0); r != 10 {
		t.Errorf("backfill pixel r = %d, want 10", r)
	}
	// Bottom-right region comes from the fetched tile.
	if r, _, _ := out[0].At(w-1, h-1); r != 200 {
		t.Errorf("tile pixel r = %d, want 200", r)
	}
	// Tile boundary: just left of the bottom-right tile is still backfill.
	if r, _, _ := out[0].At(w/2-1, h-1); r != 10 {
		t.Errorf("adjacent pixel r = %d, want 10", r)
	}
}

func TestAssembleMissingTilesDegrade(t *testing.T) {
	g := tiling.Grid{Cols: 2, Rows: 1}
	low := []*frame.Frame{flatFrame(16, 8, 7, 7, 7)}
	out, err := Assemble(g, 32, 16, low, nil) // no tiles at all
	if err != nil {
		t.Fatalf("assemble with no tiles: %v", err)
	}
	if r, _, _ := out[0].At(31, 15); r != 7 {
		t.Errorf("pixel r = %d, want backfill 7", r)
	}
}

func TestAssembleRejects(t *testing.T) {
	g := tiling.Grid{Cols: 2, Rows: 2}
	low := []*frame.Frame{flatFrame(16, 8, 0, 0, 0)}
	if _, err := Assemble(g, 30, 16, low, nil); err == nil {
		t.Error("invalid grid accepted")
	}
	if _, err := Assemble(g, 32, 16, nil, nil); err == nil {
		t.Error("missing backfill accepted")
	}
	if _, err := Assemble(g, 32, 16, low, map[int][]*frame.Frame{9: nil}); err == nil {
		t.Error("out-of-grid tile accepted")
	}
	bad := map[int][]*frame.Frame{0: {flatFrame(4, 4, 0, 0, 0)}}
	if _, err := Assemble(g, 32, 16, low, bad); err == nil {
		t.Error("wrong tile dims accepted")
	}
}
