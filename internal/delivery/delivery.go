// Package delivery implements the three-way per-segment delivery policy —
// cluster FOV stream vs per-tile set vs full-orig fallback — plus the tile
// transport pieces it needs: a tile wire format, viewport assembly with
// low-res backfill, per-tile rung selection under a byte budget, and an
// incremental playback timeline for buffer-based rate control.
//
// The package is a leaf: it depends only on codec/frame/display/geom/
// projection/tiling/netsim so that both the server (ingest, HTTP) and the
// client (Player) can import it without cycles.
package delivery

import (
	"fmt"

	"evr/internal/geom"
	"evr/internal/netsim"
)

// Mode identifies which of the three delivery paths serves a segment.
type Mode int

const (
	// ModeAuto lets the policy engine decide per segment.
	ModeAuto Mode = iota
	// ModeFOV delivers the pre-rendered cluster FOV stream (SAS).
	ModeFOV
	// ModeTiled delivers the visible tile set at per-tile quality rungs
	// plus the low-res full-frame backfill stream.
	ModeTiled
	// ModeOrig delivers the full original segment.
	ModeOrig
)

// String names the mode for reports and logs.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeFOV:
		return "fov"
	case ModeTiled:
		return "tiled"
	case ModeOrig:
		return "orig"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// PolicyConfig parameterizes the per-segment mode decision.
type PolicyConfig struct {
	// FOVConfidenceMin is the minimum predicted FOV-hit confidence
	// required to commit to the pre-rendered FOV stream.
	FOVConfidenceMin float64
	// BandwidthSafety discounts the link's nominal capacity when
	// computing the per-segment byte budget, absorbing estimate error.
	BandwidthSafety float64
	// SegmentDuration is the playback duration of one segment in seconds.
	SegmentDuration float64
	// Link models the access network used to derive byte budgets.
	Link netsim.Link
	// Hysteresis widens the decision boundaries by this relative margin
	// when SegmentInputs.LastMode is set: staying in the current mode
	// tolerates inputs up to (1+h) past a threshold, while switching into
	// a new mode requires clearing it by (1-h). Bounds mode flapping when
	// the budget oscillates around a boundary. 0 disables (memoryless).
	Hysteresis float64
}

// DefaultPolicy returns the policy used by the tiled client and load
// harness unless overridden.
func DefaultPolicy(segmentDuration float64) PolicyConfig {
	return PolicyConfig{
		FOVConfidenceMin: 0.5,
		BandwidthSafety:  0.8,
		SegmentDuration:  segmentDuration,
		Link:             netsim.WiFi300(),
		Hysteresis:       0.15,
	}
}

// Validate rejects non-physical policy parameters.
func (p PolicyConfig) Validate() error {
	if p.FOVConfidenceMin < 0 || p.FOVConfidenceMin > 1 {
		return fmt.Errorf("delivery: FOVConfidenceMin %v outside [0,1]", p.FOVConfidenceMin)
	}
	if p.BandwidthSafety <= 0 || p.BandwidthSafety > 1 {
		return fmt.Errorf("delivery: BandwidthSafety %v outside (0,1]", p.BandwidthSafety)
	}
	if p.SegmentDuration <= 0 {
		return fmt.Errorf("delivery: SegmentDuration %v must be positive", p.SegmentDuration)
	}
	if p.Link.BandwidthBps <= 0 {
		return fmt.Errorf("delivery: Link.BandwidthBps %v must be positive", p.Link.BandwidthBps)
	}
	if p.Hysteresis < 0 || p.Hysteresis >= 1 {
		return fmt.Errorf("delivery: Hysteresis %v outside [0,1)", p.Hysteresis)
	}
	return nil
}

// ByteBudget is the number of bytes the link can move in one segment
// duration after the safety discount.
func (p PolicyConfig) ByteBudget() int64 {
	return int64(p.Link.BandwidthBps / 8 * p.SegmentDuration * p.BandwidthSafety)
}

// SegmentInputs carries everything the policy sees for one segment.
type SegmentInputs struct {
	// FOVBytes is the size of the best-cluster FOV stream, or 0 when no
	// cluster covers the predicted pose.
	FOVBytes int64
	// FOVConfidence is the predicted FOV-hit confidence in [0,1].
	FOVConfidence float64
	// TiledBytes is the modeled size of the chosen tile set plus the
	// low-res backfill stream, or 0 when tiles are unavailable.
	TiledBytes int64
	// OrigBytes is the size of the full original segment.
	OrigBytes int64
	// BufferSec is the client's current playback buffer in seconds.
	BufferSec float64
	// LastMode is the mode chosen for the previous segment; the policy's
	// hysteresis band favors staying in it. ModeAuto (the zero value)
	// means no history, so the decision is memoryless.
	LastMode Mode
}

// Decision is the policy outcome for one segment.
type Decision struct {
	Mode   Mode
	Reason string
}

// Decide picks the delivery mode for one segment. The FOV stream wins when
// the prediction is confident and the stream fits the budget — it is the
// cheapest and the paper's preferred path. Otherwise tiles win whenever
// they undercut the full original; orig is the always-correct fallback.
//
// With Hysteresis h and a LastMode in the inputs, each threshold shifts by
// ±h depending on whether the candidate mode matches the previous one:
// keeping the current mode is allowed up to (1+h) past the nominal
// boundary, entering a different mode requires clearing it by (1-h). A
// budget oscillating a few percent around a boundary therefore produces at
// most one switch instead of per-segment flapping.
func (p PolicyConfig) Decide(in SegmentInputs) Decision {
	budget := p.ByteBudget()
	h := p.Hysteresis
	fovBudget := float64(budget)
	fovMin := p.FOVConfidenceMin
	tiledCeiling := float64(in.OrigBytes)
	if h > 0 {
		switch in.LastMode {
		case ModeFOV:
			fovBudget *= 1 + h
			fovMin *= 1 - h
		case ModeTiled:
			fovBudget *= 1 - h
			tiledCeiling *= 1 + h
		case ModeOrig:
			fovBudget *= 1 - h
			tiledCeiling *= 1 - h
		}
	}
	if in.FOVBytes > 0 && in.FOVConfidence >= fovMin && float64(in.FOVBytes) <= fovBudget {
		return Decision{Mode: ModeFOV, Reason: fmt.Sprintf("fov confidence %.2f >= %.2f, %dB within budget %dB", in.FOVConfidence, fovMin, in.FOVBytes, int64(fovBudget))}
	}
	if in.TiledBytes > 0 && float64(in.TiledBytes) < tiledCeiling {
		return Decision{Mode: ModeTiled, Reason: fmt.Sprintf("tiles %dB < orig ceiling %dB", in.TiledBytes, int64(tiledCeiling))}
	}
	return Decision{Mode: ModeOrig, Reason: "fallback to full original"}
}

// FOVConfidence scores how likely the pre-rendered cluster at clusterO
// still covers the predicted pose: 1 at perfect alignment, linearly down
// to 0 at the FOV tolerance.
func FOVConfidence(predicted, clusterO geom.Orientation, tolerance float64) float64 {
	if tolerance <= 0 {
		return 0
	}
	d := predicted.AngularDistance(clusterO)
	c := 1 - d/tolerance
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// DemotePeripheral applies acuity falloff to a tile rung assignment:
// fetched tiles whose center lies more than cutoff radians from the
// predicted gaze drop one rung, and beyond twice the cutoff two rungs
// (clamped to each tile's coarsest). The fovea keeps full quality while
// the periphery — which the viewer resolves poorly and the predictor is
// least sure about — ships fewer bytes. cutoff <= 0 is a no-op.
func DemotePeripheral(rungs []int, tileBytes [][]int, dist []float64, cutoff float64) {
	if cutoff <= 0 {
		return
	}
	for t, r := range rungs {
		if r < 0 || t >= len(dist) || t >= len(tileBytes) {
			continue
		}
		steps := 0
		if dist[t] > cutoff {
			steps = 1
		}
		if dist[t] > 2*cutoff {
			steps = 2
		}
		r += steps
		if max := len(tileBytes[t]) - 1; r > max {
			r = max
		}
		rungs[t] = r
	}
}

// PickTileRungs assigns a quality rung to every visible tile under a byte
// budget. Visible tiles start at baseRung (the ABR pick); while the total
// exceeds the budget, the visible tile farthest from the gaze direction
// that is not yet at the lowest rung is demoted one rung. Invisible tiles
// get -1. tileBytes[t][r] is the encoded size of tile t at rung r (rung 0
// finest); dist[t] is the angular distance from the predicted gaze to the
// tile center. A budget <= 0 means unlimited.
func PickTileRungs(visible []bool, tileBytes [][]int, baseRung int, budget int64, dist []float64) []int {
	n := len(visible)
	rungs := make([]int, n)
	var total int64
	for t := 0; t < n; t++ {
		if !visible[t] {
			rungs[t] = -1
			continue
		}
		r := baseRung
		if len(tileBytes[t]) == 0 {
			rungs[t] = -1
			continue
		}
		if r < 0 {
			r = 0
		}
		if r >= len(tileBytes[t]) {
			r = len(tileBytes[t]) - 1
		}
		rungs[t] = r
		total += int64(tileBytes[t][r])
	}
	if budget <= 0 {
		return rungs
	}
	for total > budget {
		// Demote the farthest visible tile that can still drop a rung.
		// Ties break on the lower tile index so the result is
		// deterministic for identical inputs.
		best := -1
		for t := 0; t < n; t++ {
			if rungs[t] < 0 || rungs[t] >= len(tileBytes[t])-1 {
				continue
			}
			if best == -1 || dist[t] > dist[best] {
				best = t
			}
		}
		if best == -1 {
			break // everything already at the lowest rung
		}
		total -= int64(tileBytes[best][rungs[best]])
		rungs[best]++
		total += int64(tileBytes[best][rungs[best]])
	}
	return rungs
}
