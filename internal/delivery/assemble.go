package delivery

import (
	"fmt"

	"evr/internal/display"
	"evr/internal/frame"
	"evr/internal/tiling"
)

// Assemble reconstructs full frames from the low-res backfill stream and
// whatever tiles arrived. The low frames are upscaled to w×h to fill the
// whole canvas, then each fetched tile overwrites its rectangle. Tiles
// that were mispredicted, lost, or skipped simply stay at backfill
// quality — assembly never fails because a tile is missing.
func Assemble(g tiling.Grid, w, h int, low []*frame.Frame, tiles map[int][]*frame.Frame) ([]*frame.Frame, error) {
	if err := g.Validate(w, h); err != nil {
		return nil, err
	}
	if len(low) == 0 {
		return nil, fmt.Errorf("delivery: assemble needs a backfill stream")
	}
	tw, th := w/g.Cols, h/g.Rows
	out := make([]*frame.Frame, len(low))
	for i, lf := range low {
		if lf == nil {
			return nil, fmt.Errorf("delivery: nil backfill frame %d", i)
		}
		up, err := display.Scale(lf, w, h)
		if err != nil {
			return nil, err
		}
		out[i] = up
	}
	for t, tf := range tiles {
		if t < 0 || t >= g.Tiles() {
			return nil, fmt.Errorf("delivery: tile %d outside %dx%d grid", t, g.Cols, g.Rows)
		}
		x, y := (t%g.Cols)*tw, (t/g.Cols)*th
		for i, f := range tf {
			if i >= len(out) {
				break // tile stream longer than backfill; extra frames undisplayable
			}
			if f == nil {
				continue
			}
			if f.W != tw || f.H != th {
				return nil, fmt.Errorf("delivery: tile %d frame %d is %dx%d, rect wants %dx%d", t, i, f.W, f.H, tw, th)
			}
			blit(out[i], f, x, y)
		}
	}
	return out, nil
}

// blit copies src into dst at (x, y). Callers guarantee the rectangle fits.
func blit(dst, src *frame.Frame, x, y int) {
	for row := 0; row < src.H; row++ {
		dstOff := ((y+row)*dst.W + x) * 3
		srcOff := row * src.W * 3
		copy(dst.Pix[dstOff:dstOff+src.W*3], src.Pix[srcOff:srcOff+src.W*3])
	}
}
