package delivery

import (
	"testing"

	"evr/internal/netsim"
)

// linkWithBudget builds a link whose per-segment byte budget (after the
// safety discount) is exactly b bytes for a 1 s segment.
func linkWithBudget(p PolicyConfig, b float64) netsim.Link {
	return netsim.Link{BandwidthBps: b * 8 / (p.SegmentDuration * p.BandwidthSafety), RTTSeconds: 1e-3}
}

// driveWave runs the policy over a square-wave budget trace oscillating
// ±swing around the FOV stream size, feeding each decision back as the next
// segment's LastMode, and returns the mode switch count and mode sequence.
func driveWave(p PolicyConfig, segments int, fovBytes int64, swing float64, withHistory bool) (int, []Mode) {
	trace := netsim.SquareWave(
		linkWithBudget(p, float64(fovBytes)*(1+swing)),
		linkWithBudget(p, float64(fovBytes)*(1-swing)),
		1,
	)
	last := ModeAuto
	switches := 0
	modes := make([]Mode, 0, segments)
	for i := 0; i < segments; i++ {
		p.Link = trace.At(i)
		in := SegmentInputs{
			FOVBytes:      fovBytes,
			FOVConfidence: 0.9,
			TiledBytes:    fovBytes * 3,
			OrigBytes:     fovBytes * 4,
		}
		if withHistory {
			in.LastMode = last
		}
		d := p.Decide(in)
		if last != ModeAuto && d.Mode != last {
			switches++
		}
		last = d.Mode
		modes = append(modes, d.Mode)
	}
	return switches, modes
}

func TestPolicyNoFlapOnOscillatingBandwidth(t *testing.T) {
	// The budget square-waves ±5% around the FOV stream size every
	// segment. With the default 15% hysteresis and decision feedback the
	// policy must settle: at most one switch over 20 segments.
	p := DefaultPolicy(1.0)
	switches, modes := driveWave(p, 20, 100_000, 0.05, true)
	if switches > 1 {
		t.Errorf("mode flapped %d times under ±5%% budget wave: %v", switches, modes)
	}
	// Sanity: the memoryless policy (no LastMode) does flap on the same
	// trace — the hysteresis is load-bearing, not vacuous.
	switches, modes = driveWave(p, 20, 100_000, 0.05, false)
	if switches < 5 {
		t.Errorf("memoryless policy should flap on boundary wave, got %d switches: %v", switches, modes)
	}
}

func TestPolicyStillSwitchesOnLargeChange(t *testing.T) {
	// Hysteresis must not pin the mode forever: a budget collapse far
	// outside the band (10× below the FOV size) forces a downgrade.
	p := DefaultPolicy(1.0)
	fov := int64(100_000)
	in := SegmentInputs{FOVBytes: fov, FOVConfidence: 0.9, TiledBytes: fov * 3, OrigBytes: fov * 4, LastMode: ModeFOV}

	p.Link = linkWithBudget(p, float64(fov)*2)
	if d := p.Decide(in); d.Mode != ModeFOV {
		t.Fatalf("ample budget: mode = %v (%s)", d.Mode, d.Reason)
	}
	p.Link = linkWithBudget(p, float64(fov)/10)
	if d := p.Decide(in); d.Mode == ModeFOV {
		t.Errorf("collapsed budget: policy stuck in FOV (%s)", d.Reason)
	}
}

func TestPolicyHysteresisZeroIsMemoryless(t *testing.T) {
	p := DefaultPolicy(1.0)
	p.Hysteresis = 0
	fov := int64(100_000)
	p.Link = linkWithBudget(p, float64(fov)*0.99)
	with := p.Decide(SegmentInputs{FOVBytes: fov, FOVConfidence: 0.9, OrigBytes: fov * 4, LastMode: ModeFOV})
	without := p.Decide(SegmentInputs{FOVBytes: fov, FOVConfidence: 0.9, OrigBytes: fov * 4})
	if with.Mode != without.Mode {
		t.Errorf("zero hysteresis must ignore history: %v vs %v", with.Mode, without.Mode)
	}
}

func TestPolicyValidateHysteresis(t *testing.T) {
	p := DefaultPolicy(1.0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Hysteresis = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative hysteresis accepted")
	}
	p.Hysteresis = 1
	if err := p.Validate(); err == nil {
		t.Error("hysteresis = 1 accepted")
	}
}
