package delivery

import (
	"encoding/binary"
	"fmt"

	"evr/internal/codec"
)

// tileMagic opens every tile payload on the wire. The version digit bumps
// if the layout ever changes.
const tileMagic = "EVT1"

// TilePayload is one encoded tile stream as it travels from server to
// client: the grid geometry it was cut from, its position, the quality
// rung it was encoded at, and the bitstream itself.
type TilePayload struct {
	Cols, Rows int
	Tile       int
	Rung       int
	Bits       *codec.Bitstream
}

// MarshalTile serializes a tile payload. Layout (big endian):
//
//	magic "EVT1" | cols u8 | rows u8 | tile u16 | rung u8 |
//	W u16 | H u16 | nFrames u32 | nFrames × (type u8 | len u32 | data)
//
// The format is canonical: UnmarshalTile(MarshalTile(p)) re-encodes to the
// identical bytes, which the fuzzer pins.
func MarshalTile(p *TilePayload) ([]byte, error) {
	if p == nil || p.Bits == nil {
		return nil, fmt.Errorf("delivery: nil tile payload")
	}
	if p.Cols < 1 || p.Cols > 255 || p.Rows < 1 || p.Rows > 255 {
		return nil, fmt.Errorf("delivery: grid %dx%d outside [1,255]", p.Cols, p.Rows)
	}
	if p.Tile < 0 || p.Tile >= p.Cols*p.Rows {
		return nil, fmt.Errorf("delivery: tile %d outside %dx%d grid", p.Tile, p.Cols, p.Rows)
	}
	if p.Rung < 0 || p.Rung > 255 {
		return nil, fmt.Errorf("delivery: rung %d outside [0,255]", p.Rung)
	}
	b := p.Bits
	if b.W < 0 || b.W > 0xFFFF || b.H < 0 || b.H > 0xFFFF {
		return nil, fmt.Errorf("delivery: tile dims %dx%d exceed u16", b.W, b.H)
	}
	if len(b.Frames) != len(b.Types) {
		return nil, fmt.Errorf("delivery: %d frames but %d types", len(b.Frames), len(b.Types))
	}
	for i, t := range b.Types {
		if t != codec.IFrame && t != codec.PFrame {
			return nil, fmt.Errorf("delivery: frame %d has unknown type %q", i, byte(t))
		}
	}
	size := len(tileMagic) + 5 + 4 + 4
	for _, f := range b.Frames {
		size += 5 + len(f)
	}
	out := make([]byte, 0, size)
	out = append(out, tileMagic...)
	out = append(out, byte(p.Cols), byte(p.Rows))
	out = binary.BigEndian.AppendUint16(out, uint16(p.Tile))
	out = append(out, byte(p.Rung))
	out = binary.BigEndian.AppendUint16(out, uint16(b.W))
	out = binary.BigEndian.AppendUint16(out, uint16(b.H))
	out = binary.BigEndian.AppendUint32(out, uint32(len(b.Frames)))
	for i, f := range b.Frames {
		out = append(out, byte(b.Types[i]))
		out = binary.BigEndian.AppendUint32(out, uint32(len(f)))
		out = append(out, f...)
	}
	return out, nil
}

// UnmarshalTile parses a tile payload, rejecting truncated input, trailing
// bytes, out-of-grid tile indices, and empty grids. It never preallocates
// from claimed counts, so hostile headers cannot force large allocations.
func UnmarshalTile(data []byte) (*TilePayload, error) {
	if len(data) < len(tileMagic) {
		return nil, fmt.Errorf("delivery: tile payload too short for magic")
	}
	if string(data[:len(tileMagic)]) != tileMagic {
		return nil, fmt.Errorf("delivery: bad tile magic %q", data[:len(tileMagic)])
	}
	rest := data[len(tileMagic):]
	if len(rest) < 5+4+4 {
		return nil, fmt.Errorf("delivery: tile header truncated at %d bytes", len(rest))
	}
	p := &TilePayload{
		Cols: int(rest[0]),
		Rows: int(rest[1]),
		Tile: int(binary.BigEndian.Uint16(rest[2:4])),
		Rung: int(rest[4]),
	}
	if p.Cols == 0 || p.Rows == 0 {
		return nil, fmt.Errorf("delivery: zero tile grid %dx%d", p.Cols, p.Rows)
	}
	if p.Tile >= p.Cols*p.Rows {
		return nil, fmt.Errorf("delivery: tile %d outside %dx%d grid", p.Tile, p.Cols, p.Rows)
	}
	rest = rest[5:]
	bits := &codec.Bitstream{
		W: int(binary.BigEndian.Uint16(rest[0:2])),
		H: int(binary.BigEndian.Uint16(rest[2:4])),
	}
	n := binary.BigEndian.Uint32(rest[4:8])
	rest = rest[8:]
	for i := uint32(0); i < n; i++ {
		if len(rest) < 5 {
			return nil, fmt.Errorf("delivery: frame %d header truncated", i)
		}
		ft := codec.FrameType(rest[0])
		if ft != codec.IFrame && ft != codec.PFrame {
			return nil, fmt.Errorf("delivery: frame %d has unknown type %q", i, rest[0])
		}
		fl := binary.BigEndian.Uint32(rest[1:5])
		rest = rest[5:]
		if uint32(len(rest)) < fl {
			return nil, fmt.Errorf("delivery: frame %d claims %d bytes, %d remain", i, fl, len(rest))
		}
		buf := make([]byte, fl)
		copy(buf, rest[:fl])
		bits.Frames = append(bits.Frames, buf)
		bits.Types = append(bits.Types, ft)
		rest = rest[fl:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("delivery: %d trailing bytes after tile payload", len(rest))
	}
	p.Bits = bits
	return p, nil
}
