package delivery

import (
	"math"
	"testing"

	"evr/internal/abr"
	"evr/internal/netsim"
)

// TestTimelineMatchesSimulate pins the incremental timeline against
// abr.Simulate with a fixed rung sequence: same stall count, stall time,
// and startup delay.
func TestTimelineMatchesSimulate(t *testing.T) {
	link := netsim.Link{BandwidthBps: 8e6, RTTSeconds: 0.02}
	const segDur = 1.0
	topBytes := []int64{4e6, 4e6, 4e6, 4e6, 4e6, 4e6}

	ladder := abr.Ladder{Ratios: []float64{1.0}}
	ctrl, err := abr.NewBufferController(1, segDur)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := abr.Simulate(link, ladder, ctrl, topBytes, segDur, 1)
	if err != nil {
		t.Fatal(err)
	}

	tl := NewTimeline(link, segDur)
	for _, b := range topBytes {
		tl.Advance(b)
	}
	if tl.Stalls != ref.Stalls {
		t.Errorf("stalls = %d, want %d", tl.Stalls, ref.Stalls)
	}
	if math.Abs(tl.StallSec-ref.StallTime) > 1e-9 {
		t.Errorf("stall time = %v, want %v", tl.StallSec, ref.StallTime)
	}
	if math.Abs(tl.StartupDelay-ref.StartupDelay) > 1e-9 {
		t.Errorf("startup = %v, want %v", tl.StartupDelay, ref.StartupDelay)
	}
	if tl.Bytes != ref.Bytes {
		t.Errorf("bytes = %d, want %d", tl.Bytes, ref.Bytes)
	}
}

func TestTimelineBuffer(t *testing.T) {
	// A fat link accumulates buffer: each segment transfers in well under
	// its duration, so the buffer grows toward one segment per advance.
	link := netsim.Link{BandwidthBps: 800e6}
	tl := NewTimeline(link, 1.0)
	if tl.Buffer() != 0 {
		t.Fatalf("initial buffer = %v", tl.Buffer())
	}
	for i := 0; i < 3; i++ {
		tl.Advance(1e6)
	}
	if b := tl.Buffer(); b <= 1.5 {
		t.Errorf("buffer after 3 fast segments = %v, want > 1.5", b)
	}
	if tl.Stalls != 0 {
		t.Errorf("fast link stalled %d times", tl.Stalls)
	}

	// A starved link stalls: every transfer takes longer than playback.
	slow := NewTimeline(netsim.Link{BandwidthBps: 1e6}, 1.0)
	for i := 0; i < 3; i++ {
		slow.Advance(1e6) // 8 seconds per 1-second segment
	}
	if slow.Stalls == 0 {
		t.Error("starved link never stalled")
	}
	if slow.StallSec <= 0 {
		t.Error("starved link has zero stall time")
	}
}
