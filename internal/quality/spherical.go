// Spherically-weighted quality metrics (WS-PSNR, S-PSNR) for 360° content.
//
// A planar raster of a panorama over- or under-represents parts of the
// viewing sphere: ERP dedicates as many pixels to the top row (a single
// point of the sphere) as to the equator. Flat per-pixel MSE therefore
// over-weights the poles. The metrics here weight each pixel by the solid
// angle its raster cell subtends on the sphere (WS-PSNR), or resample both
// frames at a uniform set of sphere points (S-PSNR), so scores reflect what
// a viewer can actually see. The SPORT truncation optimizer
// (internal/experiments) is built on these tables; DESIGN.md §16 derives
// the per-projection weights.
package quality

import (
	"fmt"
	"math"
	"sync"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/projection"
)

// WeightTable holds per-pixel solid-angle weights for one raster geometry.
// Weights are in steradians; a table for a full panorama sums to 4π.
type WeightTable struct {
	W, H    int
	Weights []float64 // len W*H, row-major; steradians per pixel cell
	Lat     []float64 // len W*H pixel-center latitude (radians), or nil
	Sum     float64   // Σ Weights
}

// solidAngleRect is the antiderivative of the solid-angle density of the
// plane z=1 seen from the origin: the solid angle of the axis-aligned
// rectangle [0,s]×[0,t] is F(s,t) = atan(st/√(1+s²+t²)). A grid cell's
// solid angle follows by inclusion–exclusion over its corners, so a full
// grid telescopes exactly to the enclosing rectangle's angle — the weight
// table sums to the sphere area to rounding error, with no numerical
// integration.
func solidAngleRect(s, t float64) float64 {
	return math.Atan(s * t / math.Sqrt(1+s*s+t*t))
}

// cellSolidAngle returns the solid angle of the plane-z=1 cell
// [s1,s2]×[t1,t2].
func cellSolidAngle(s1, s2, t1, t2 float64) float64 {
	return solidAngleRect(s2, t2) - solidAngleRect(s1, t2) - solidAngleRect(s2, t1) + solidAngleRect(s1, t1)
}

// SphericalWeights returns the solid-angle weight table for a w×h panorama
// raster under the projection method. Tables are cached per (method, dims)
// and must be treated as read-only. CMP and EAC require the 3×2 face
// layout's divisibility (w%3 == 0, h%2 == 0).
func SphericalWeights(m projection.Method, w, h int) (*WeightTable, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("quality: weight table needs positive dims, got %dx%d", w, h)
	}
	key := weightKey{m: m, w: w, h: h}
	weightMu.Lock()
	t, ok := weightCache[key]
	weightMu.Unlock()
	if ok {
		return t, nil
	}
	var err error
	switch m {
	case projection.ERP:
		t = erpWeights(w, h)
	case projection.CMP:
		t, err = cubeWeights(w, h, false)
	case projection.EAC:
		t, err = cubeWeights(w, h, true)
	default:
		err = fmt.Errorf("quality: unknown projection method %v", m)
	}
	if err != nil {
		return nil, err
	}
	weightMu.Lock()
	weightCache[key] = t
	weightMu.Unlock()
	return t, nil
}

type weightKey struct {
	m    projection.Method
	w, h int
}

var (
	weightMu    sync.Mutex
	weightCache = map[weightKey]*WeightTable{}
)

// erpWeights builds the ERP table: every pixel of row y covers the same
// latitude slab, whose area per pixel is Δθ·(sin φ_top − sin φ_bot). The
// row boundaries telescope, so the table sums to exactly 4π.
func erpWeights(w, h int) *WeightTable {
	t := &WeightTable{W: w, H: h, Weights: make([]float64, w*h), Lat: make([]float64, w*h)}
	// sin of the latitude at row boundary y: φ(y) = π/2 − πy/h.
	sinB := make([]float64, h+1)
	for y := 0; y <= h; y++ {
		sinB[y] = math.Cos(math.Pi * float64(y) / float64(h))
	}
	dTheta := 2 * math.Pi / float64(w)
	for y := 0; y < h; y++ {
		wgt := dTheta * (sinB[y] - sinB[y+1])
		lat := math.Pi/2 - math.Pi*(float64(y)+0.5)/float64(h)
		for x := 0; x < w; x++ {
			t.Weights[y*w+x] = wgt
			t.Lat[y*w+x] = lat
		}
		t.Sum += wgt * float64(w)
	}
	return t
}

// cubeWeights builds the CMP/EAC table for the 3×2 face layout. Each tile
// holds one cube face; a raster cell's image on the face plane is an
// axis-aligned cell of a fw×fh grid (face placements only flip or transpose
// axes, and cellSolidAngle is symmetric under both), so the per-tile weight
// grid is shared by all six faces and telescopes to 2π/3 per face.
func cubeWeights(w, h int, eac bool) (*WeightTable, error) {
	if w%3 != 0 || h%2 != 0 {
		return nil, fmt.Errorf("quality: cube-layout weights need w%%3==0 and h%%2==0, got %dx%d", w, h)
	}
	fw, fh := w/3, h/2
	m := projection.CMP
	if eac {
		m = projection.EAC
	}
	// Face-plane coordinates of the cell boundaries. EAC rasters are
	// uniform in the warped coordinate q; the plane coordinate is
	// p = tan(qπ/4) (the inverse of the equi-angular warp).
	bs := cubeBoundaries(fw, eac)
	bt := cubeBoundaries(fh, eac)
	grid := make([]float64, fw*fh)
	for v := 0; v < fh; v++ {
		for u := 0; u < fw; u++ {
			grid[v*fw+u] = cellSolidAngle(bs[u], bs[u+1], bt[v], bt[v+1])
		}
	}
	t := &WeightTable{W: w, H: h, Weights: make([]float64, w*h), Lat: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			wgt := grid[(y%fh)*fw+x%fw]
			t.Weights[y*w+x] = wgt
			t.Sum += wgt
			dir := projection.ToSphere(m, (float64(x)+0.5)/float64(w), (float64(y)+0.5)/float64(h))
			t.Lat[y*w+x] = geom.FromCartesian(dir).Phi
		}
	}
	return t, nil
}

// cubeBoundaries returns the n+1 face-plane coordinates of a face's cell
// boundaries, uniform in the raster coordinate (warped for EAC).
func cubeBoundaries(n int, eac bool) []float64 {
	b := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		q := 2*float64(i)/float64(n) - 1
		if eac {
			b[i] = math.Tan(q * math.Pi / 4)
		} else {
			b[i] = q
		}
	}
	return b
}

// UniformWeights returns a table giving every pixel the same weight
// (4π/(w·h)), under which the weighted metrics reduce exactly to their flat
// counterparts. Lat is nil: a uniform table has no latitude structure.
func UniformWeights(w, h int) *WeightTable {
	t := &WeightTable{W: w, H: h, Weights: make([]float64, w*h)}
	wgt := 4 * math.Pi / float64(w*h)
	for i := range t.Weights {
		t.Weights[i] = wgt
	}
	t.Sum = wgt * float64(w*h)
	return t
}

// ViewportWeights returns the solid-angle table for a rendered viewport:
// each output pixel's cell on the image plane at focal distance 1, matching
// projection.Viewport's pixel-center sampling. Lat is nil — a viewport's
// latitude coverage depends on the head orientation, which the table does
// not know.
func ViewportWeights(vp projection.Viewport) *WeightTable {
	t := &WeightTable{W: vp.Width, H: vp.Height, Weights: make([]float64, vp.Width*vp.Height)}
	tx := math.Tan(vp.FOVX / 2)
	ty := math.Tan(vp.FOVY / 2)
	bx := make([]float64, vp.Width+1)
	for i := 0; i <= vp.Width; i++ {
		bx[i] = (2*float64(i)/float64(vp.Width) - 1) * tx
	}
	by := make([]float64, vp.Height+1)
	for j := 0; j <= vp.Height; j++ {
		by[j] = (1 - 2*float64(j)/float64(vp.Height)) * ty
	}
	for j := 0; j < vp.Height; j++ {
		for i := 0; i < vp.Width; i++ {
			wgt := cellSolidAngle(bx[i], bx[i+1], by[j+1], by[j])
			t.Weights[j*vp.Width+i] = wgt
			t.Sum += wgt
		}
	}
	return t
}

// check validates that both frames match the table geometry.
func (t *WeightTable) check(a, b *frame.Frame) error {
	if a == nil || b == nil {
		return fmt.Errorf("quality: nil frame")
	}
	if a.W != b.W || a.H != b.H {
		return fmt.Errorf("quality: dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	if a.W != t.W || a.H != t.H {
		return fmt.Errorf("quality: frames %dx%d do not match %dx%d weight table", a.W, a.H, t.W, t.H)
	}
	return nil
}

// WeightedMSE returns the solid-angle-weighted mean squared error between
// two frames, averaged over the RGB channels. Identical frames return 0.
func (t *WeightTable) WeightedMSE(a, b *frame.Frame) (float64, error) {
	if err := t.check(a, b); err != nil {
		return 0, err
	}
	if t.Sum == 0 {
		return 0, fmt.Errorf("quality: degenerate weight table (zero total weight)")
	}
	var sse float64
	for p, wgt := range t.Weights {
		i := p * 3
		dr := float64(int(a.Pix[i]) - int(b.Pix[i]))
		dg := float64(int(a.Pix[i+1]) - int(b.Pix[i+1]))
		db := float64(int(a.Pix[i+2]) - int(b.Pix[i+2]))
		sse += wgt * (dr*dr + dg*dg + db*db)
	}
	return sse / 3 / t.Sum, nil
}

// WeightedPSNR returns the weighted PSNR in dB. Identical frames return
// +Inf, mirroring frame.PSNR.
func (t *WeightTable) WeightedPSNR(a, b *frame.Frame) (float64, error) {
	mse, err := t.WeightedMSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// WSPSNR scores two equally-sized panoramas in the given projection with
// raster-cell solid-angle weighting (the WS-PSNR metric).
func WSPSNR(m projection.Method, a, b *frame.Frame) (float64, error) {
	if a == nil || b == nil {
		return 0, fmt.Errorf("quality: nil frame")
	}
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("quality: dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	t, err := SphericalWeights(m, a.W, a.H)
	if err != nil {
		return 0, err
	}
	return t.WeightedPSNR(a, b)
}

// DefaultSPSNRSamples is the sphere sample count used by SPSNR.
const DefaultSPSNRSamples = 65536

// SpherePoints returns n deterministic, near-uniform directions on the unit
// sphere (a Fibonacci spiral). The set is cached per n and is read-only.
func SpherePoints(n int) []geom.Vec3 {
	sphereMu.Lock()
	pts, ok := sphereCache[n]
	sphereMu.Unlock()
	if ok {
		return pts
	}
	pts = make([]geom.Vec3, n)
	const golden = 0.6180339887498949 // (√5−1)/2
	for i := 0; i < n; i++ {
		y := 1 - 2*(float64(i)+0.5)/float64(n)
		theta := 2 * math.Pi * math.Mod(float64(i)*golden, 1)
		pts[i] = geom.Spherical{Theta: theta - math.Pi, Phi: math.Asin(y)}.ToCartesian()
	}
	sphereMu.Lock()
	sphereCache[n] = pts
	sphereMu.Unlock()
	return pts
}

var (
	sphereMu    sync.Mutex
	sphereCache = map[int][]geom.Vec3{}
)

// SPSNRSampled scores two equally-sized panoramas by nearest-pixel sampling
// both at n uniform sphere points (the S-PSNR metric). Identical frames
// return +Inf.
func SPSNRSampled(m projection.Method, a, b *frame.Frame, n int) (float64, error) {
	if a == nil || b == nil {
		return 0, fmt.Errorf("quality: nil frame")
	}
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("quality: dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	if a.W < 1 || a.H < 1 {
		return 0, fmt.Errorf("quality: empty frame")
	}
	if n < 1 {
		return 0, fmt.Errorf("quality: S-PSNR needs at least one sample, got %d", n)
	}
	var sse float64
	for _, dir := range SpherePoints(n) {
		u, v := projection.ToPlane(m, dir)
		x := clampInt(int(u*float64(a.W)), 0, a.W-1)
		y := clampInt(int(v*float64(a.H)), 0, a.H-1)
		i := (y*a.W + x) * 3
		for c := 0; c < 3; c++ {
			d := float64(int(a.Pix[i+c]) - int(b.Pix[i+c]))
			sse += d * d
		}
	}
	mse := sse / 3 / float64(n)
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// SPSNR is SPSNRSampled at the default sample count.
func SPSNR(m projection.Method, a, b *frame.Frame) (float64, error) {
	return SPSNRSampled(m, a, b, DefaultSPSNRSamples)
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// BandError is one latitude band of a BandProfile.
type BandError struct {
	LatMinDeg, LatMaxDeg float64
	Weight               float64 // steradians covered by the band's pixels
	Pixels               int
	MSE                  float64 // weighted MSE within the band
	PSNR                 float64 // +Inf for error-free (or empty) bands
}

// BandProfile splits the table's pixels into equal latitude bands (south to
// north) and returns the weighted error of each — the per-band view of the
// error distribution that the SPORT optimizer allocates bits against. The
// table must carry latitudes (panorama tables do; uniform and viewport
// tables do not).
func (t *WeightTable) BandProfile(a, b *frame.Frame, bands int) ([]BandError, error) {
	if err := t.check(a, b); err != nil {
		return nil, err
	}
	if bands < 1 {
		return nil, fmt.Errorf("quality: band profile needs ≥ 1 band, got %d", bands)
	}
	if t.Lat == nil {
		return nil, fmt.Errorf("quality: weight table has no latitude data")
	}
	type acc struct {
		sse, w float64
		px     int
	}
	accs := make([]acc, bands)
	for p, wgt := range t.Weights {
		band := int((t.Lat[p] + math.Pi/2) / math.Pi * float64(bands))
		band = clampInt(band, 0, bands-1)
		i := p * 3
		dr := float64(int(a.Pix[i]) - int(b.Pix[i]))
		dg := float64(int(a.Pix[i+1]) - int(b.Pix[i+1]))
		db := float64(int(a.Pix[i+2]) - int(b.Pix[i+2]))
		accs[band].sse += wgt * (dr*dr + dg*dg + db*db)
		accs[band].w += wgt
		accs[band].px++
	}
	out := make([]BandError, bands)
	for i := range out {
		out[i] = BandError{
			LatMinDeg: -90 + 180*float64(i)/float64(bands),
			LatMaxDeg: -90 + 180*float64(i+1)/float64(bands),
			Weight:    accs[i].w,
			Pixels:    accs[i].px,
			PSNR:      math.Inf(1),
		}
		if accs[i].w > 0 {
			out[i].MSE = accs[i].sse / 3 / accs[i].w
			if out[i].MSE > 0 {
				out[i].PSNR = 10 * math.Log10(255*255/out[i].MSE)
			}
		}
	}
	return out, nil
}
