package quality

import (
	"math"
	"math/rand"
	"testing"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/projection"
)

// sphereScene paints a smooth function of the viewing direction into a
// panorama raster, so the same sphere content can be rasterized under any
// projection method.
func sphereScene(m projection.Method, w, h int) *frame.Frame {
	f := frame.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dir := projection.ToSphere(m, (float64(x)+0.5)/float64(w), (float64(y)+0.5)/float64(h))
			s := geom.FromCartesian(dir)
			r := byte(128 + 70*math.Cos(s.Phi)*math.Sin(2*s.Theta) + 30*math.Sin(s.Phi))
			g := byte(128 + 70*math.Cos(s.Phi)*math.Cos(s.Theta) - 40*math.Sin(s.Phi))
			b := byte(128 + 60*math.Sin(3*s.Theta)*math.Cos(s.Phi) + 25*math.Cos(2*s.Phi))
			f.Set(x, y, r, g, b)
		}
	}
	return f
}

// noisy returns a copy of f with uniform noise of the given amplitude added
// to every channel, deterministically.
func noisy(f *frame.Frame, amp int, seed int64) *frame.Frame {
	rng := rand.New(rand.NewSource(seed))
	out := frame.New(f.W, f.H)
	for i, p := range f.Pix {
		d := rng.Intn(2*amp+1) - amp
		v := int(p) + d
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out.Pix[i] = byte(v)
	}
	return out
}

func TestWeightTableSumsToSphereArea(t *testing.T) {
	cases := []struct {
		m    projection.Method
		w, h int
	}{
		{projection.ERP, 192, 96},
		{projection.ERP, 17, 9}, // odd dims must telescope too
		{projection.CMP, 192, 128},
		{projection.EAC, 192, 128},
		{projection.CMP, 48, 32},
		{projection.EAC, 48, 32},
	}
	for _, c := range cases {
		tab, err := SphericalWeights(c.m, c.w, c.h)
		if err != nil {
			t.Fatalf("SphericalWeights(%v, %d, %d): %v", c.m, c.w, c.h, err)
		}
		want := 4 * math.Pi
		if rel := math.Abs(tab.Sum-want) / want; rel > 1e-9 {
			t.Errorf("%v %dx%d: table sum %.15g, want 4π (rel err %.2e)", c.m, c.w, c.h, tab.Sum, rel)
		}
		for i, w := range tab.Weights {
			if w <= 0 {
				t.Fatalf("%v %dx%d: non-positive weight %g at %d", c.m, c.w, c.h, w, i)
			}
		}
	}
}

func TestCubeWeightsRejectBadLayout(t *testing.T) {
	if _, err := SphericalWeights(projection.CMP, 100, 64); err == nil {
		t.Error("CMP weights with w%3 != 0 should fail")
	}
	if _, err := SphericalWeights(projection.EAC, 96, 63); err == nil {
		t.Error("EAC weights with h%2 != 0 should fail")
	}
}

// Under uniform weights the weighted PSNR must reduce exactly to the flat
// frame.PSNR (the weights cancel).
func TestUniformWeightsMatchFlatPSNR(t *testing.T) {
	a := sphereScene(projection.ERP, 96, 48)
	b := noisy(a, 6, 1)
	got, err := UniformWeights(96, 48).WeightedPSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := frame.PSNR(a, b)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("uniform weighted PSNR %.12f != flat PSNR %.12f", got, want)
	}
}

// Rotating an ERP panorama by k columns is an exact yaw rotation of the
// sphere content (mirroring the conformance yaw-equivariance property), so
// spherically-weighted scores must be invariant.
func TestYawRotationInvariance(t *testing.T) {
	const w, h = 96, 48
	a := sphereScene(projection.ERP, w, h)
	b := noisy(a, 8, 2)
	base, err := WSPSNR(projection.ERP, a, b)
	if err != nil {
		t.Fatal(err)
	}
	baseS, err := SPSNRSampled(projection.ERP, a, b, 16384)
	if err != nil {
		t.Fatal(err)
	}
	roll := func(f *frame.Frame, k int) *frame.Frame {
		out := frame.New(f.W, f.H)
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				r, g, b := f.At((x+k)%f.W, y)
				out.Set(x, y, r, g, b)
			}
		}
		return out
	}
	for _, k := range []int{1, 17, w / 2} {
		got, err := WSPSNR(projection.ERP, roll(a, k), roll(b, k))
		if err != nil {
			t.Fatal(err)
		}
		// WS-PSNR weights depend only on the row, so a column roll must be
		// exactly invariant.
		if math.Abs(got-base) > 1e-9 {
			t.Errorf("WSPSNR changed under yaw roll %d: %.12f vs %.12f", k, got, base)
		}
		gotS, err := SPSNRSampled(projection.ERP, roll(a, k), roll(b, k), 16384)
		if err != nil {
			t.Fatal(err)
		}
		// S-PSNR samples a fixed point set, so rolled content is sampled at
		// a yaw-rotated (still uniform) set: near-invariant, not exact.
		if math.Abs(gotS-baseS) > 0.3 {
			t.Errorf("SPSNR moved %.3f dB under yaw roll %d (%.3f vs %.3f)", gotS-baseS, k, gotS, baseS)
		}
	}
}

func TestIdenticalFramesScoreInf(t *testing.T) {
	a := sphereScene(projection.ERP, 48, 24)
	if got, err := WSPSNR(projection.ERP, a, a); err != nil || !math.IsInf(got, 1) {
		t.Errorf("WSPSNR(a,a) = %v, %v; want +Inf, nil", got, err)
	}
	if got, err := SPSNRSampled(projection.ERP, a, a, 4096); err != nil || !math.IsInf(got, 1) {
		t.Errorf("SPSNR(a,a) = %v, %v; want +Inf, nil", got, err)
	}
	tab, err := SphericalWeights(projection.ERP, 48, 24)
	if err != nil {
		t.Fatal(err)
	}
	if mse, err := tab.WeightedMSE(a, a); err != nil || mse != 0 {
		t.Errorf("WeightedMSE(a,a) = %v, %v; want 0, nil", mse, err)
	}
}

// More noise must never improve the score.
func TestMonotoneDegradation(t *testing.T) {
	a := sphereScene(projection.ERP, 96, 48)
	prevW, prevS := math.Inf(1), math.Inf(1)
	for _, amp := range []int{2, 6, 14, 30, 60} {
		b := noisy(a, amp, 3)
		ws, err := WSPSNR(projection.ERP, a, b)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := SPSNRSampled(projection.ERP, a, b, 16384)
		if err != nil {
			t.Fatal(err)
		}
		if ws >= prevW {
			t.Errorf("WSPSNR not monotone: amp %d scored %.3f ≥ previous %.3f", amp, ws, prevW)
		}
		if sp >= prevS {
			t.Errorf("SPSNR not monotone: amp %d scored %.3f ≥ previous %.3f", amp, sp, prevS)
		}
		prevW, prevS = ws, sp
	}
}

// The same sphere content with the same noise process, rasterized under
// different projections, must agree in spherically-weighted score within a
// budget (that is the entire point of weighting: the raster layout stops
// mattering).
func TestCrossProjectionConsistency(t *testing.T) {
	type scored struct {
		m    projection.Method
		w, h int
	}
	cases := []scored{
		{projection.ERP, 192, 96},
		{projection.CMP, 192, 128},
		{projection.EAC, 192, 128},
	}
	var spsnr []float64
	for _, c := range cases {
		a := sphereScene(c.m, c.w, c.h)
		// Noise amplitude is the degradation under test; the raster layout
		// differs per projection, so only statistical agreement is possible.
		b := noisy(a, 10, 4)
		s, err := SPSNRSampled(c.m, a, b, 32768)
		if err != nil {
			t.Fatalf("%v: %v", c.m, err)
		}
		ws, err := WSPSNR(c.m, a, b)
		if err != nil {
			t.Fatalf("%v: %v", c.m, err)
		}
		if math.Abs(s-ws) > 1.0 {
			t.Errorf("%v: S-PSNR %.3f and WS-PSNR %.3f disagree by more than 1 dB", c.m, s, ws)
		}
		spsnr = append(spsnr, s)
	}
	for i := 1; i < len(spsnr); i++ {
		if d := math.Abs(spsnr[i] - spsnr[0]); d > 1.0 {
			t.Errorf("S-PSNR across projections diverges: %v=%.3f vs %v=%.3f (Δ%.3f dB)",
				cases[i].m, spsnr[i], cases[0].m, spsnr[0], d)
		}
	}
}

func TestWeightedMetricsRejectMismatch(t *testing.T) {
	a := sphereScene(projection.ERP, 48, 24)
	b := sphereScene(projection.ERP, 96, 48)
	if _, err := WSPSNR(projection.ERP, a, b); err == nil {
		t.Error("WSPSNR dims mismatch should error")
	}
	if _, err := SPSNRSampled(projection.ERP, a, b, 1024); err == nil {
		t.Error("SPSNR dims mismatch should error")
	}
	tab, _ := SphericalWeights(projection.ERP, 48, 24)
	if _, err := tab.WeightedMSE(a, b); err == nil {
		t.Error("WeightedMSE dims mismatch should error")
	}
	if _, err := tab.WeightedMSE(b, b); err == nil {
		t.Error("WeightedMSE table/frame mismatch should error")
	}
}

func TestViewportWeights(t *testing.T) {
	vp := projection.Viewport{Width: 32, Height: 32, FOVX: geom.Radians(90), FOVY: geom.Radians(90)}
	tab := ViewportWeights(vp)
	// Solid angle of a square 90°×90°-extent pyramid: 4·asin(tan²(45°)/ (1+tan²)) …
	// easier: the plane rectangle [−1,1]² at z=1 subtends 4·atan(1/√3) = 2π/3.
	want := 2 * math.Pi / 3
	if rel := math.Abs(tab.Sum-want) / want; rel > 1e-9 {
		t.Errorf("viewport table sum %.12f, want 2π/3 (rel %.2e)", tab.Sum, rel)
	}
	// Center pixels subtend more solid angle than corners on the plane.
	center := tab.Weights[(16*32)+16]
	corner := tab.Weights[0]
	if center <= corner {
		t.Errorf("center weight %g should exceed corner weight %g", center, corner)
	}
}

func TestBandProfile(t *testing.T) {
	const w, h = 96, 48
	a := sphereScene(projection.ERP, w, h)
	b := frame.New(w, h)
	copy(b.Pix, a.Pix)
	// Corrupt only the top quarter (north pole region).
	for y := 0; y < h/4; y++ {
		for x := 0; x < w; x++ {
			r, g, bl := b.At(x, y)
			b.Set(x, y, r^0x3f, g, bl)
		}
	}
	tab, err := SphericalWeights(projection.ERP, w, h)
	if err != nil {
		t.Fatal(err)
	}
	bands, err := tab.BandProfile(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 4 {
		t.Fatalf("got %d bands, want 4", len(bands))
	}
	var wsum float64
	for _, bd := range bands {
		wsum += bd.Weight
	}
	if rel := math.Abs(wsum-4*math.Pi) / (4 * math.Pi); rel > 1e-9 {
		t.Errorf("band weights sum to %.12f, want 4π", wsum)
	}
	// Bands are south→north: only the last (northmost) band was corrupted.
	for i, bd := range bands[:3] {
		if bd.MSE != 0 {
			t.Errorf("band %d [%g,%g] MSE %g, want 0", i, bd.LatMinDeg, bd.LatMaxDeg, bd.MSE)
		}
	}
	if bands[3].MSE == 0 {
		t.Error("north band should carry the injected error")
	}
	if _, err := UniformWeights(w, h).BandProfile(a, b, 4); err == nil {
		t.Error("BandProfile without latitude data should error")
	}
}
