// Package quality implements 360° video quality assessment, the second
// use-case of the PTE hardware (§8.6): content servers score incoming
// panoramic video in real time by projecting it to viewer perspectives
// (a sequence of PT operations) and computing full-reference metrics —
// PSNR and SSIM — against the pristine source.
//
// The package provides both the pixel-exact assessor (real PT + real
// metrics, used in tests and the example) and the pipeline energy model
// behind Fig. 17's GPU-vs-PTE comparison.
package quality

import (
	"fmt"
	"math"

	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/projection"
	"evr/internal/pt"
	"evr/internal/pte"
)

// SSIM computes the mean structural similarity index over the luma channel
// using the standard 8×8 windows and K1=0.01, K2=0.03 constants. Identical
// frames score 1. Mismatched dimensions return NaN (scores are undefined
// across geometries); library callers that want the reason should use
// SSIMChecked.
func SSIM(a, b *frame.Frame) float64 {
	s, err := SSIMChecked(a, b)
	if err != nil {
		return math.NaN()
	}
	return s
}

// SSIMChecked is SSIM with an explicit error for mismatched dimensions
// instead of the NaN sentinel.
func SSIMChecked(a, b *frame.Frame) (float64, error) {
	if a == nil || b == nil {
		return 0, fmt.Errorf("quality: nil frame")
	}
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("quality: SSIM dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	const win = 8
	const c1 = (0.01 * 255) * (0.01 * 255)
	const c2 = (0.03 * 255) * (0.03 * 255)
	if a.W < win || a.H < win {
		return 1, nil // degenerate frames compare as identical structure
	}
	var sum float64
	n := 0
	for by := 0; by+win <= a.H; by += win {
		for bx := 0; bx+win <= a.W; bx += win {
			var ma, mb float64
			for y := 0; y < win; y++ {
				for x := 0; x < win; x++ {
					ma += float64(a.Luma(bx+x, by+y))
					mb += float64(b.Luma(bx+x, by+y))
				}
			}
			ma /= win * win
			mb /= win * win
			var va, vb, cov float64
			for y := 0; y < win; y++ {
				for x := 0; x < win; x++ {
					da := float64(a.Luma(bx+x, by+y)) - ma
					db := float64(b.Luma(bx+x, by+y)) - mb
					va += da * da
					vb += db * db
					cov += da * db
				}
			}
			va /= win*win - 1
			vb /= win*win - 1
			cov /= win*win - 1
			ssim := ((2*ma*mb + c1) * (2*cov + c2)) / ((ma*ma + mb*mb + c1) * (va + vb + c2))
			sum += ssim
			n++
		}
	}
	return sum / float64(n), nil
}

// ViewScore is the metric pair for one assessed perspective.
type ViewScore struct {
	View geom.Orientation
	PSNR float64
	SSIM float64
}

// Report aggregates an assessment over all perspectives.
type Report struct {
	Views    []ViewScore
	MeanPSNR float64
	MeanSSIM float64
}

// Assessor projects 360° content to a set of viewer perspectives and scores
// a distorted stream against a reference (the §8.6 pipeline, after [68]).
type Assessor struct {
	PT    pt.Config
	Views []geom.Orientation
}

// DefaultViews returns eight perspectives: the six cube-face directions
// plus two oblique views.
func DefaultViews() []geom.Orientation {
	return []geom.Orientation{
		{Yaw: 0}, {Yaw: math.Pi / 2}, {Yaw: math.Pi}, {Yaw: -math.Pi / 2},
		{Pitch: math.Pi / 2}, {Pitch: -math.Pi / 2},
		{Yaw: math.Pi / 4, Pitch: math.Pi / 6}, {Yaw: -3 * math.Pi / 4, Pitch: -math.Pi / 6},
	}
}

// NewAssessor builds an assessor for a projection method and output size.
func NewAssessor(m projection.Method, outW, outH int) Assessor {
	return Assessor{
		PT: pt.Config{
			Projection: m,
			Filter:     pt.Bilinear,
			Viewport: projection.Viewport{
				Width: outW, Height: outH,
				FOVX: geom.Radians(90), FOVY: geom.Radians(90),
			},
		},
		Views: DefaultViews(),
	}
}

// Assess scores a distorted panoramic frame against the reference one. A
// reference/distorted geometry mismatch returns the zero Report; use
// AssessChecked when the caller needs the reason.
func (a Assessor) Assess(ref, distorted *frame.Frame) Report {
	rep, err := a.AssessChecked(ref, distorted)
	if err != nil {
		return Report{}
	}
	return rep
}

// AssessChecked scores a distorted panoramic frame against the reference
// one, rejecting mismatched inputs instead of silently scoring frames from
// different geometries against each other (both rasters render to the same
// viewport, so a mismatch would otherwise produce plausible-looking garbage
// scores).
func (a Assessor) AssessChecked(ref, distorted *frame.Frame) (Report, error) {
	if ref == nil || distorted == nil {
		return Report{}, fmt.Errorf("quality: nil frame")
	}
	if ref.W != distorted.W || ref.H != distorted.H {
		return Report{}, fmt.Errorf("quality: assess dimension mismatch %dx%d vs %dx%d",
			ref.W, ref.H, distorted.W, distorted.H)
	}
	if len(a.Views) == 0 {
		return Report{}, fmt.Errorf("quality: assessor has no views")
	}
	var rep Report
	for _, view := range a.Views {
		// The parallel renderer is byte-identical to the serial reference,
		// so scores are unaffected by the worker count.
		pr := pt.RenderParallel(a.PT, ref, view, 0)
		pd := pt.RenderParallel(a.PT, distorted, view, 0)
		vs := ViewScore{View: view, PSNR: frame.PSNR(pr, pd), SSIM: SSIM(pr, pd)}
		rep.Views = append(rep.Views, vs)
		if math.IsInf(vs.PSNR, 1) {
			rep.MeanPSNR += 99 // cap identical views for a finite mean
		} else {
			rep.MeanPSNR += vs.PSNR
		}
		rep.MeanSSIM += vs.SSIM
	}
	n := float64(len(rep.Views))
	rep.MeanPSNR /= n
	rep.MeanSSIM /= n
	return rep, nil
}

// PipelineEnergy models the per-frame energy of the real-time assessment
// pipeline of Fig. 17: decode + projective transformation + metric
// computation, with PT on either a server GPU or a PTE.
//
// The GPU's PT cost is dominated by per-kernel fixed work (launch, state,
// texture setup) with a modest per-pixel slope, which is exactly why its
// relative advantage improves at higher output resolutions and the PTE's
// energy reduction shrinks — the trend of Fig. 17.
type PipelineEnergy struct {
	DecodeJ      float64 // per input frame
	MetricJPerPx float64 // PSNR+SSIM per output pixel (CPU)
	GPUFixedJ    float64 // per PT batch on the GPU
	GPUJPerPx    float64
	PTE          pte.Config
}

// DefaultPipelineEnergy returns calibrated constants for a server-class
// assessment node.
func DefaultPipelineEnergy(m projection.Method, outW, outH int) PipelineEnergy {
	vp := projection.Viewport{Width: outW, Height: outH, FOVX: geom.Radians(90), FOVY: geom.Radians(90)}
	gpuPerPx := 2.0e-9
	switch m {
	case projection.CMP:
		gpuPerPx = 1.9e-9 // cheapest mapping: no trigonometry
	case projection.EAC:
		gpuPerPx = 2.1e-9 // extra arctangent warp
	}
	return PipelineEnergy{
		DecodeJ:      8e-3,
		MetricJPerPx: 24e-9,
		GPUFixedJ:    25e-3,
		GPUJPerPx:    gpuPerPx,
		PTE:          pte.DefaultConfig(m, pt.Bilinear, vp),
	}
}

// FrameEnergies returns the per-frame pipeline energy with PT on the GPU
// and on the PTE, for an input panorama of the given size.
func (p PipelineEnergy) FrameEnergies(inW, inH int) (gpuJ, pteJ float64) {
	px := float64(p.PTE.Viewport.Pixels())
	shared := p.DecodeJ + p.MetricJPerPx*px
	gpuJ = shared + p.GPUFixedJ + p.GPUJPerPx*px
	pteJ = shared + p.PTE.FrameEnergyJ(inW, inH)
	return gpuJ, pteJ
}

// ReductionPct returns the PTE's energy reduction over the GPU pipeline.
func (p PipelineEnergy) ReductionPct(inW, inH int) float64 {
	g, e := p.FrameEnergies(inW, inH)
	return 100 * (1 - e/g)
}
