package quality

import (
	"math"
	"math/rand"
	"testing"

	"evr/internal/frame"
	"evr/internal/projection"
	"evr/internal/scene"
)

func TestSSIMIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	f := frame.New(32, 32)
	for i := range f.Pix {
		f.Pix[i] = byte(rng.Intn(256))
	}
	if got := SSIM(f, f.Clone()); math.Abs(got-1) > 1e-9 {
		t.Errorf("SSIM of identical frames = %v, want 1", got)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	v, _ := scene.ByName("RS")
	ref := v.RenderFrame(0, projection.ERP, 64, 32)
	light := ref.Clone()
	heavy := ref.Clone()
	rng := rand.New(rand.NewSource(71))
	for i := range light.Pix {
		light.Pix[i] = clampAdd(light.Pix[i], rng.Intn(11)-5)
		heavy.Pix[i] = clampAdd(heavy.Pix[i], rng.Intn(101)-50)
	}
	sLight := SSIM(ref, light)
	sHeavy := SSIM(ref, heavy)
	if !(sHeavy < sLight && sLight < 1) {
		t.Errorf("SSIM ordering broken: heavy=%v light=%v", sHeavy, sLight)
	}
	if sHeavy < 0 {
		t.Errorf("SSIM %v below plausible floor", sHeavy)
	}
}

func clampAdd(b byte, d int) byte {
	v := int(b) + d
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return byte(v)
}

// Library-facing metric entry points must reject bad inputs with a status
// (error or the documented NaN sentinel), never a panic: the assessment
// pipeline runs on server ingest paths where a malformed upload must not
// take the process down.
func TestMetricStatusOnBadInput(t *testing.T) {
	a8 := frame.New(8, 8)
	a16 := frame.New(16, 16)
	cases := []struct {
		name string
		err  func() error
	}{
		{"SSIMChecked mismatch", func() error { _, err := SSIMChecked(a8, a16); return err }},
		{"SSIMChecked nil", func() error { _, err := SSIMChecked(nil, a8); return err }},
		{"AssessChecked mismatch", func() error {
			_, err := NewAssessor(projection.ERP, 16, 16).AssessChecked(a16, a8)
			return err
		}},
		{"AssessChecked nil", func() error {
			_, err := NewAssessor(projection.ERP, 16, 16).AssessChecked(nil, a8)
			return err
		}},
		{"AssessChecked no views", func() error {
			_, err := Assessor{}.AssessChecked(a8, a8.Clone())
			return err
		}},
		{"WSPSNR mismatch", func() error { _, err := WSPSNR(projection.ERP, a8, a16); return err }},
		{"SPSNR mismatch", func() error { _, err := SPSNR(projection.ERP, a8, a16); return err }},
		{"SPSNR no samples", func() error { _, err := SPSNRSampled(projection.ERP, a8, a8, 0); return err }},
		{"SphericalWeights bad dims", func() error { _, err := SphericalWeights(projection.ERP, 0, 8); return err }},
		{"SphericalWeights bad layout", func() error { _, err := SphericalWeights(projection.CMP, 8, 8); return err }},
	}
	for _, c := range cases {
		if err := c.err(); err == nil {
			t.Errorf("%s: accepted, want error", c.name)
		}
	}
	if got := SSIM(a8, a16); !math.IsNaN(got) {
		t.Errorf("SSIM on mismatched dims = %v, want NaN", got)
	}
	if rep := (Assessor{}).Assess(a8, a8.Clone()); len(rep.Views) != 0 {
		t.Errorf("Assess on invalid assessor returned views: %+v", rep)
	}
}

func TestSSIMTinyFrames(t *testing.T) {
	if got := SSIM(frame.New(4, 4), frame.New(4, 4)); got != 1 {
		t.Errorf("sub-window frames should score 1, got %v", got)
	}
}

func TestAssessorScoresDistortion(t *testing.T) {
	v, _ := scene.ByName("RS")
	ref := v.RenderFrame(0, projection.ERP, 128, 64)
	a := NewAssessor(projection.ERP, 32, 32)
	perfect := a.Assess(ref, ref.Clone())
	if perfect.MeanSSIM < 0.999 {
		t.Errorf("identical content SSIM = %v", perfect.MeanSSIM)
	}
	if len(perfect.Views) != len(DefaultViews()) {
		t.Errorf("scored %d views", len(perfect.Views))
	}
	// Quantize the distorted copy harshly.
	bad := ref.Clone()
	for i := range bad.Pix {
		bad.Pix[i] &= 0xC0
	}
	worse := a.Assess(ref, bad)
	if worse.MeanSSIM >= perfect.MeanSSIM || worse.MeanPSNR >= perfect.MeanPSNR {
		t.Errorf("distortion did not lower scores: %+v vs %+v", worse.MeanPSNR, perfect.MeanPSNR)
	}
}

func TestFig17ReductionShape(t *testing.T) {
	// Fig. 17: PTE saves up to ~40% of the assessment pipeline energy, and
	// the reduction shrinks as output resolution grows.
	resolutions := [][2]int{{960, 1080}, {1080, 1200}, {1280, 1440}, {1440, 1600}}
	for _, m := range projection.Methods {
		var prev float64 = math.Inf(1)
		for i, res := range resolutions {
			p := DefaultPipelineEnergy(m, res[0], res[1])
			red := p.ReductionPct(3840, 2160)
			if red <= 0 || red > 60 {
				t.Errorf("%v %dx%d: reduction %.1f%% out of (0, 60]", m, res[0], res[1], red)
			}
			if i == 0 && (red < 30 || red > 55) {
				t.Errorf("%v lowest-res reduction %.1f%%, want ≈40%%", m, red)
			}
			if red >= prev {
				t.Errorf("%v: reduction not decreasing with resolution (%.1f then %.1f)", m, prev, red)
			}
			prev = red
		}
	}
}

func TestPipelineEnergiesPositive(t *testing.T) {
	p := DefaultPipelineEnergy(projection.ERP, 960, 1080)
	g, e := p.FrameEnergies(3840, 2160)
	if g <= 0 || e <= 0 || e >= g {
		t.Errorf("energies implausible: gpu=%v pte=%v", g, e)
	}
}

func TestProjectionCostOrdering(t *testing.T) {
	// CMP's mapping is cheapest on the GPU, EAC's the dearest.
	cmp := DefaultPipelineEnergy(projection.CMP, 960, 1080)
	erp := DefaultPipelineEnergy(projection.ERP, 960, 1080)
	eac := DefaultPipelineEnergy(projection.EAC, 960, 1080)
	if !(cmp.GPUJPerPx < erp.GPUJPerPx && erp.GPUJPerPx < eac.GPUJPerPx) {
		t.Error("per-pixel GPU cost ordering CMP < ERP < EAC broken")
	}
}
