package netsim

import "fmt"

// Session is a discrete-event model of a segment-granular streaming session
// — the buffering behaviour behind the FPS-drop and rebuffering results
// (§8.2): a sequential downloader fills a playback buffer over the Link
// while the playback clock drains it in real time.
type Session struct {
	Link Link
	// StartupSegments is how many segments must be buffered before
	// playback starts (the initial buffering policy).
	StartupSegments int
	// BufferCapSegments caps how far the downloader runs ahead.
	BufferCapSegments int
}

// DefaultSession returns a typical small-buffer streaming policy.
func DefaultSession(l Link) Session {
	return Session{Link: l, StartupSegments: 2, BufferCapSegments: 4}
}

// Validate reports whether the session policy is usable.
func (s Session) Validate() error {
	if err := s.Link.Validate(); err != nil {
		return err
	}
	if s.StartupSegments < 1 {
		return fmt.Errorf("netsim: startup segments %d must be ≥ 1", s.StartupSegments)
	}
	if s.BufferCapSegments < s.StartupSegments {
		return fmt.Errorf("netsim: buffer cap %d below startup %d", s.BufferCapSegments, s.StartupSegments)
	}
	return nil
}

// Stall is one playback interruption.
type Stall struct {
	At       float64 // playback-clock position when the buffer ran dry
	Duration float64
}

// SessionResult reports the QoE outcome of a run.
type SessionResult struct {
	StartupDelay  float64 // wall time before the first frame
	Stalls        []Stall
	TotalStall    float64
	WallTime      float64 // total wall-clock time to play everything
	PlayTime      float64 // content duration
	MeanBufferSec float64 // average buffer occupancy while playing
}

// StallCount returns the number of interruptions.
func (r SessionResult) StallCount() int { return len(r.Stalls) }

// Run plays a sequence of segment sizes (bytes), each segmentDuration
// seconds of content, and returns the session QoE. The downloader fetches
// segments back to back (subject to the buffer cap); playback starts once
// StartupSegments are buffered and stalls whenever the buffer empties,
// resuming after the in-flight segment lands.
func (s Session) Run(segments []int64, segmentDuration float64) (SessionResult, error) {
	if err := s.Validate(); err != nil {
		return SessionResult{}, err
	}
	if segmentDuration <= 0 {
		return SessionResult{}, fmt.Errorf("netsim: segment duration %v must be positive", segmentDuration)
	}
	var r SessionResult
	if len(segments) == 0 {
		return r, nil
	}
	n := len(segments)
	r.PlayTime = float64(n) * segmentDuration
	arrive := make([]float64, n)    // wall time each segment lands
	playStart := make([]float64, n) // wall time each segment begins playing

	var clock float64 // downloader wall clock
	started := false
	for i := 0; i < n; i++ {
		// Buffer cap: segment i may start downloading only once segment
		// i-cap has finished playing. Because the cap is at least the
		// startup threshold, playStart[i-cap] is already known here.
		if i >= s.BufferCapSegments {
			if gate := playStart[i-s.BufferCapSegments] + segmentDuration; clock < gate {
				clock = gate
			}
		}
		clock += s.Link.TransferSeconds(segments[i])
		arrive[i] = clock

		if !started && i+1 == s.StartupSegments {
			// Startup threshold reached: segments 0..i play back to back.
			started = true
			r.StartupDelay = clock
			playStart[0] = clock
			for j := 1; j <= i; j++ {
				playStart[j] = playStart[j-1] + segmentDuration
			}
			continue
		}
		if started {
			prevEnd := playStart[i-1] + segmentDuration
			start := prevEnd
			if arrive[i] > prevEnd {
				// Buffer ran dry: stall until the segment lands.
				d := arrive[i] - prevEnd
				r.Stalls = append(r.Stalls, Stall{At: float64(i) * segmentDuration, Duration: d})
				r.TotalStall += d
				start = arrive[i]
			}
			playStart[i] = start
		}
	}
	if !started {
		// Fewer segments than the startup threshold: play once all landed.
		r.StartupDelay = clock
		playStart[0] = clock
		for j := 1; j < n; j++ {
			playStart[j] = playStart[j-1] + segmentDuration
		}
	}
	r.WallTime = playStart[n-1] + segmentDuration
	// Mean buffer lead: how far ahead of playback each segment arrived.
	var occ float64
	for i := 0; i < n; i++ {
		if lead := playStart[i] - arrive[i]; lead > 0 {
			occ += lead
		}
	}
	r.MeanBufferSec = occ / float64(n)
	return r, nil
}
