// Package netsim models the streaming network path of the evaluation setup:
// a WiFi link with an effective bandwidth of 300 Mbps (§8.2), used to
// compute transfer times (and hence rebuffering pauses on FOV misses) and
// to drive the network component of the device energy model.
package netsim

import (
	"fmt"
	"math"
)

// Link models a wireless link with fixed effective bandwidth, base latency,
// an optional packet-loss rate (retransmissions stretch transfers by
// the expected 1/(1-loss) factor — a fluid approximation of ARQ), and an
// optional jitter bound used by fault-injection transports.
type Link struct {
	BandwidthBps  float64 // effective payload bandwidth, bits per second
	RTTSeconds    float64 // request round-trip latency
	LossRate      float64 // packet loss probability in [0, 1)
	JitterSeconds float64 // max extra per-request delay (injected uniformly in [0, jitter])
}

// WiFi300 returns the paper's evaluation link: 300 Mbps effective WiFi with
// a small campus-network RTT.
func WiFi300() Link {
	return Link{BandwidthBps: 300e6, RTTSeconds: 2e-3}
}

// Validate reports whether the link is usable. NaN and ±Inf are rejected on
// every field (a NaN loss rate previously slid through the range checks,
// since NaN fails every comparison).
func (l Link) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"bandwidth", l.BandwidthBps},
		{"RTT", l.RTTSeconds},
		{"loss rate", l.LossRate},
		{"jitter", l.JitterSeconds},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("netsim: %s %v must be finite", f.name, f.v)
		}
	}
	if l.BandwidthBps <= 0 {
		return fmt.Errorf("netsim: bandwidth %v bps must be positive", l.BandwidthBps)
	}
	if l.RTTSeconds < 0 {
		return fmt.Errorf("netsim: RTT %v s must be non-negative", l.RTTSeconds)
	}
	if l.LossRate < 0 || l.LossRate >= 1 {
		return fmt.Errorf("netsim: loss rate %v out of [0, 1)", l.LossRate)
	}
	if l.JitterSeconds < 0 {
		return fmt.Errorf("netsim: jitter %v s must be non-negative", l.JitterSeconds)
	}
	return nil
}

// TransferSeconds returns the time to fetch a payload of the given size,
// including one round trip and expected retransmissions.
func (l Link) TransferSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return l.RTTSeconds
	}
	goodput := l.BandwidthBps * (1 - l.LossRate)
	return l.RTTSeconds + float64(bytes)*8/goodput
}

// Stats accumulates transfer activity for bandwidth accounting.
type Stats struct {
	Requests      int
	Bytes         int64
	BusySeconds   float64
	RebufferCount int
	RebufferSecs  float64
}

// Transfer records a fetch and returns its duration.
func (s *Stats) Transfer(l Link, bytes int64) float64 {
	d := l.TransferSeconds(bytes)
	s.Requests++
	s.Bytes += bytes
	s.BusySeconds += d
	return d
}

// Rebuffer records a playback stall of the given duration (a blocking
// mid-stream fetch, e.g. a FOV miss re-requesting the original segment).
func (s *Stats) Rebuffer(seconds float64) {
	s.RebufferCount++
	s.RebufferSecs += seconds
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Requests += o.Requests
	s.Bytes += o.Bytes
	s.BusySeconds += o.BusySeconds
	s.RebufferCount += o.RebufferCount
	s.RebufferSecs += o.RebufferSecs
}
