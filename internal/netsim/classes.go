package netsim

import "sort"

// Named link classes for heterogeneous-fleet and chaos runs. Every class
// validates; "wifi300" is the paper's evaluation link.
var classes = map[string]Link{
	"wifi300": WiFi300(),
	"wifi80":  {BandwidthBps: 80e6, RTTSeconds: 5e-3, JitterSeconds: 2e-3},
	"lte50":   {BandwidthBps: 50e6, RTTSeconds: 30e-3, LossRate: 0.005, JitterSeconds: 10e-3},
	"dsl20":   {BandwidthBps: 20e6, RTTSeconds: 15e-3, JitterSeconds: 5e-3},
	"lossy":   {BandwidthBps: 100e6, RTTSeconds: 10e-3, LossRate: 0.05, JitterSeconds: 20e-3},
}

// ClassByName resolves a named link class.
func ClassByName(name string) (Link, bool) {
	l, ok := classes[name]
	return l, ok
}

// ClassNames returns the known class names, sorted, for error messages.
func ClassNames() []string {
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Trace is a cyclic per-segment link schedule: segment i sees Steps[i mod
// len(Steps)]. It models bandwidth churn (square waves, steps, spikes)
// without any clock — deterministic by construction.
type Trace struct {
	Steps []Link
}

// At returns the link in effect for segment i. An empty trace returns the
// paper's evaluation link.
func (t Trace) At(i int) Link {
	if len(t.Steps) == 0 {
		return WiFi300()
	}
	if i < 0 {
		i = -i
	}
	return t.Steps[i%len(t.Steps)]
}

// Validate checks every step.
func (t Trace) Validate() error {
	for _, s := range t.Steps {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SquareWave builds a trace alternating between a and b every period
// segments (a for segments [0,period), b for [period,2·period), …).
func SquareWave(a, b Link, period int) Trace {
	if period < 1 {
		period = 1
	}
	steps := make([]Link, 0, 2*period)
	for i := 0; i < period; i++ {
		steps = append(steps, a)
	}
	for i := 0; i < period; i++ {
		steps = append(steps, b)
	}
	return Trace{Steps: steps}
}
