package netsim

import (
	"math"
	"testing"
)

func TestWiFi300(t *testing.T) {
	l := WiFi300()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.BandwidthBps != 300e6 {
		t.Errorf("bandwidth = %v", l.BandwidthBps)
	}
}

func TestValidate(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		link Link
		ok   bool
	}{
		{"wifi300", WiFi300(), true},
		{"jittery", Link{BandwidthBps: 1e6, RTTSeconds: 0.01, JitterSeconds: 0.02}, true},
		{"zero jitter", Link{BandwidthBps: 1e6}, true},
		{"max usable loss", Link{BandwidthBps: 1, LossRate: 0.999}, true},
		{"zero bandwidth", Link{BandwidthBps: 0}, false},
		{"negative bandwidth", Link{BandwidthBps: -1}, false},
		{"negative RTT", Link{BandwidthBps: 1, RTTSeconds: -1}, false},
		{"total loss", Link{BandwidthBps: 1, LossRate: 1}, false},
		{"negative loss", Link{BandwidthBps: 1, LossRate: -0.1}, false},
		{"negative jitter", Link{BandwidthBps: 1, JitterSeconds: -1e-3}, false},
		{"NaN loss", Link{BandwidthBps: 1, LossRate: nan}, false},
		{"NaN bandwidth", Link{BandwidthBps: nan}, false},
		{"NaN RTT", Link{BandwidthBps: 1, RTTSeconds: nan}, false},
		{"NaN jitter", Link{BandwidthBps: 1, JitterSeconds: nan}, false},
		{"Inf bandwidth", Link{BandwidthBps: inf}, false},
		{"-Inf RTT", Link{BandwidthBps: 1, RTTSeconds: math.Inf(-1)}, false},
		{"Inf loss", Link{BandwidthBps: 1, LossRate: inf}, false},
		{"Inf jitter", Link{BandwidthBps: 1, JitterSeconds: inf}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.link.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", tc.link, err)
			}
			if !tc.ok && err == nil {
				t.Errorf("Validate(%+v) accepted, want error", tc.link)
			}
		})
	}
}

func TestLinkClasses(t *testing.T) {
	for _, name := range ClassNames() {
		l, ok := ClassByName(name)
		if !ok {
			t.Fatalf("ClassByName(%q) missing", name)
		}
		if err := l.Validate(); err != nil {
			t.Errorf("class %q invalid: %v", name, err)
		}
	}
	if _, ok := ClassByName("carrier-pigeon"); ok {
		t.Error("unknown class resolved")
	}
	if l, _ := ClassByName("wifi300"); l != WiFi300() {
		t.Errorf("wifi300 class = %+v", l)
	}
}

func TestTraceAt(t *testing.T) {
	a := Link{BandwidthBps: 10e6}
	b := Link{BandwidthBps: 1e6}
	tr := SquareWave(a, b, 2)
	want := []Link{a, a, b, b, a, a, b, b}
	for i, w := range want {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %+v, want %+v", i, got, w)
		}
	}
	if got := (Trace{}).At(3); got != WiFi300() {
		t.Errorf("empty trace At = %+v", got)
	}
	if got := tr.At(-3); got != tr.At(3) {
		t.Errorf("negative index not mirrored")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Trace{Steps: []Link{a, {BandwidthBps: math.NaN()}}}
	if err := bad.Validate(); err == nil {
		t.Error("trace with NaN step accepted")
	}
}

func TestLossyLinkStretchesTransfers(t *testing.T) {
	clean := Link{BandwidthBps: 8e6}
	lossy := Link{BandwidthBps: 8e6, LossRate: 0.5}
	c := clean.TransferSeconds(1e6)
	l := lossy.TransferSeconds(1e6)
	if math.Abs(l-2*c) > 1e-9 {
		t.Errorf("50%% loss should double transfer time: %v vs %v", l, c)
	}
}

func TestTransferSeconds(t *testing.T) {
	l := Link{BandwidthBps: 8e6, RTTSeconds: 0.001} // 1 MB/s
	if got := l.TransferSeconds(1e6); math.Abs(got-1.001) > 1e-9 {
		t.Errorf("1MB transfer = %v s, want 1.001", got)
	}
	if got := l.TransferSeconds(0); got != 0.001 {
		t.Errorf("empty transfer = %v s, want RTT only", got)
	}
}

func TestSegmentRebufferUnderPaperBound(t *testing.T) {
	// §8.2: re-buffering a missed segment pauses rendering for at most
	// 8 ms on the 300 Mbps link. A 30-frame 4K segment at ~50 Mbps is
	// ~208 KB; its transfer must come in under that bound's ballpark.
	l := WiFi300()
	segmentBytes := int64(50e6 / 8 * 1.0 / 30 * 30) // 1 s at 50 Mbps ≈ 6.25 MB... per-GOP slice below
	_ = segmentBytes
	perSegment := int64(50e6 / 8) // one second of video
	d := l.TransferSeconds(perSegment / 6)
	if d > 0.05 {
		t.Errorf("segment rebuffer %v s implausibly high for 300 Mbps", d)
	}
}

func TestStatsAccumulate(t *testing.T) {
	l := Link{BandwidthBps: 8e6, RTTSeconds: 0}
	var s Stats
	d := s.Transfer(l, 2e6)
	if math.Abs(d-2.0) > 1e-9 {
		t.Errorf("transfer duration = %v", d)
	}
	s.Transfer(l, 1e6)
	if s.Requests != 2 || s.Bytes != 3e6 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.BusySeconds-3.0) > 1e-9 {
		t.Errorf("busy = %v", s.BusySeconds)
	}
	s.Rebuffer(0.004)
	if s.RebufferCount != 1 || s.RebufferSecs != 0.004 {
		t.Errorf("rebuffer stats = %+v", s)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Requests: 1, Bytes: 10, BusySeconds: 0.5, RebufferCount: 1, RebufferSecs: 0.1}
	a.Add(Stats{Requests: 2, Bytes: 20, BusySeconds: 1.0, RebufferCount: 0, RebufferSecs: 0})
	if a.Requests != 3 || a.Bytes != 30 || a.BusySeconds != 1.5 || a.RebufferCount != 1 {
		t.Errorf("Add = %+v", a)
	}
}
