package netsim

import (
	"math"
	"testing"
)

func TestWiFi300(t *testing.T) {
	l := WiFi300()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.BandwidthBps != 300e6 {
		t.Errorf("bandwidth = %v", l.BandwidthBps)
	}
}

func TestValidate(t *testing.T) {
	if err := (Link{BandwidthBps: 0, RTTSeconds: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Link{BandwidthBps: 1, RTTSeconds: -1}).Validate(); err == nil {
		t.Error("negative RTT accepted")
	}
	if err := (Link{BandwidthBps: 1, LossRate: 1}).Validate(); err == nil {
		t.Error("total loss accepted")
	}
	if err := (Link{BandwidthBps: 1, LossRate: -0.1}).Validate(); err == nil {
		t.Error("negative loss accepted")
	}
}

func TestLossyLinkStretchesTransfers(t *testing.T) {
	clean := Link{BandwidthBps: 8e6}
	lossy := Link{BandwidthBps: 8e6, LossRate: 0.5}
	c := clean.TransferSeconds(1e6)
	l := lossy.TransferSeconds(1e6)
	if math.Abs(l-2*c) > 1e-9 {
		t.Errorf("50%% loss should double transfer time: %v vs %v", l, c)
	}
}

func TestTransferSeconds(t *testing.T) {
	l := Link{BandwidthBps: 8e6, RTTSeconds: 0.001} // 1 MB/s
	if got := l.TransferSeconds(1e6); math.Abs(got-1.001) > 1e-9 {
		t.Errorf("1MB transfer = %v s, want 1.001", got)
	}
	if got := l.TransferSeconds(0); got != 0.001 {
		t.Errorf("empty transfer = %v s, want RTT only", got)
	}
}

func TestSegmentRebufferUnderPaperBound(t *testing.T) {
	// §8.2: re-buffering a missed segment pauses rendering for at most
	// 8 ms on the 300 Mbps link. A 30-frame 4K segment at ~50 Mbps is
	// ~208 KB; its transfer must come in under that bound's ballpark.
	l := WiFi300()
	segmentBytes := int64(50e6 / 8 * 1.0 / 30 * 30) // 1 s at 50 Mbps ≈ 6.25 MB... per-GOP slice below
	_ = segmentBytes
	perSegment := int64(50e6 / 8) // one second of video
	d := l.TransferSeconds(perSegment / 6)
	if d > 0.05 {
		t.Errorf("segment rebuffer %v s implausibly high for 300 Mbps", d)
	}
}

func TestStatsAccumulate(t *testing.T) {
	l := Link{BandwidthBps: 8e6, RTTSeconds: 0}
	var s Stats
	d := s.Transfer(l, 2e6)
	if math.Abs(d-2.0) > 1e-9 {
		t.Errorf("transfer duration = %v", d)
	}
	s.Transfer(l, 1e6)
	if s.Requests != 2 || s.Bytes != 3e6 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.BusySeconds-3.0) > 1e-9 {
		t.Errorf("busy = %v", s.BusySeconds)
	}
	s.Rebuffer(0.004)
	if s.RebufferCount != 1 || s.RebufferSecs != 0.004 {
		t.Errorf("rebuffer stats = %+v", s)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Requests: 1, Bytes: 10, BusySeconds: 0.5, RebufferCount: 1, RebufferSecs: 0.1}
	a.Add(Stats{Requests: 2, Bytes: 20, BusySeconds: 1.0, RebufferCount: 0, RebufferSecs: 0})
	if a.Requests != 3 || a.Bytes != 30 || a.BusySeconds != 1.5 || a.RebufferCount != 1 {
		t.Errorf("Add = %+v", a)
	}
}
