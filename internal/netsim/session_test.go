package netsim

import (
	"math"
	"testing"
)

// testLink transfers 1 MB/s with no RTT for easy arithmetic.
func testLink() Link { return Link{BandwidthBps: 8e6} }

func TestSessionValidate(t *testing.T) {
	if err := DefaultSession(WiFi300()).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Session{Link: testLink(), StartupSegments: 0, BufferCapSegments: 2}
	if err := bad.Validate(); err == nil {
		t.Error("zero startup accepted")
	}
	bad = Session{Link: testLink(), StartupSegments: 3, BufferCapSegments: 2}
	if err := bad.Validate(); err == nil {
		t.Error("cap below startup accepted")
	}
	s := DefaultSession(testLink())
	if _, err := s.Run([]int64{1}, 0); err == nil {
		t.Error("zero segment duration accepted")
	}
}

func TestSessionEmpty(t *testing.T) {
	s := DefaultSession(testLink())
	r, err := s.Run(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.StallCount() != 0 || r.WallTime != 0 {
		t.Errorf("empty session: %+v", r)
	}
}

func TestSessionSmoothPlayback(t *testing.T) {
	// Segments of 0.5 MB = 0.5 s download each, 1 s of content: downloads
	// run at twice real time, so after startup there are no stalls.
	s := Session{Link: testLink(), StartupSegments: 2, BufferCapSegments: 4}
	segs := make([]int64, 10)
	for i := range segs {
		segs[i] = 500_000
	}
	r, err := s.Run(segs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.StallCount() != 0 {
		t.Errorf("unexpected stalls: %+v", r.Stalls)
	}
	if math.Abs(r.StartupDelay-1.0) > 1e-9 { // two segments × 0.5 s
		t.Errorf("startup = %v, want 1.0", r.StartupDelay)
	}
	if math.Abs(r.WallTime-(1.0+10)) > 1e-9 {
		t.Errorf("wall time = %v, want 11", r.WallTime)
	}
	if r.MeanBufferSec <= 0 {
		t.Error("buffer lead should be positive")
	}
}

func TestSessionUnderprovisionedStalls(t *testing.T) {
	// 2 MB segments take 2 s to download but hold 1 s of content: every
	// post-startup segment stalls ~1 s.
	s := Session{Link: testLink(), StartupSegments: 1, BufferCapSegments: 2}
	segs := []int64{2_000_000, 2_000_000, 2_000_000, 2_000_000}
	r, err := s.Run(segs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.StallCount() != 3 {
		t.Fatalf("stalls = %d, want 3: %+v", r.StallCount(), r.Stalls)
	}
	if math.Abs(r.TotalStall-3.0) > 1e-9 {
		t.Errorf("total stall = %v, want 3.0", r.TotalStall)
	}
	// Wall time = startup(2) + play(4) + stalls(3).
	if math.Abs(r.WallTime-9.0) > 1e-9 {
		t.Errorf("wall time = %v, want 9", r.WallTime)
	}
}

func TestSessionOneBigSegmentStall(t *testing.T) {
	// One oversized segment mid-stream (a FOV miss re-fetching an
	// original) causes exactly one bounded stall.
	s := Session{Link: testLink(), StartupSegments: 2, BufferCapSegments: 4}
	segs := []int64{100_000, 100_000, 100_000, 4_000_000, 100_000, 100_000}
	r, err := s.Run(segs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.StallCount() != 1 {
		t.Fatalf("stalls = %d, want 1: %+v", r.StallCount(), r.Stalls)
	}
	if r.Stalls[0].Duration <= 0 || r.Stalls[0].Duration > 4 {
		t.Errorf("stall duration = %v", r.Stalls[0].Duration)
	}
}

func TestSessionBufferCapLimitsLead(t *testing.T) {
	// With a tight cap the downloader cannot run far ahead even on a fast
	// link; mean buffer lead is bounded by the cap's worth of content.
	fast := Link{BandwidthBps: 8e9}
	tight := Session{Link: fast, StartupSegments: 1, BufferCapSegments: 2}
	loose := Session{Link: fast, StartupSegments: 1, BufferCapSegments: 16}
	segs := make([]int64, 20)
	for i := range segs {
		segs[i] = 1_000_000
	}
	rt, _ := tight.Run(segs, 1.0)
	rl, _ := loose.Run(segs, 1.0)
	if rt.MeanBufferSec >= rl.MeanBufferSec {
		t.Errorf("tight cap lead %v not below loose %v", rt.MeanBufferSec, rl.MeanBufferSec)
	}
	if rt.MeanBufferSec > 2.5 {
		t.Errorf("tight cap lead %v exceeds the 2-segment cap", rt.MeanBufferSec)
	}
}

func TestSessionFewerSegmentsThanStartup(t *testing.T) {
	s := Session{Link: testLink(), StartupSegments: 4, BufferCapSegments: 8}
	r, err := s.Run([]int64{500_000, 500_000}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.StartupDelay-1.0) > 1e-9 {
		t.Errorf("startup = %v, want full download time", r.StartupDelay)
	}
	if r.StallCount() != 0 {
		t.Error("short session should not stall")
	}
}

func TestSessionLossyLinkStallsMore(t *testing.T) {
	segs := make([]int64, 12)
	for i := range segs {
		segs[i] = 900_000 // 0.9 s at 1 MB/s: barely real-time
	}
	clean := Session{Link: testLink(), StartupSegments: 1, BufferCapSegments: 3}
	lossyLink := testLink()
	lossyLink.LossRate = 0.3
	lossy := Session{Link: lossyLink, StartupSegments: 1, BufferCapSegments: 3}
	rc, _ := clean.Run(segs, 1.0)
	rl, _ := lossy.Run(segs, 1.0)
	if rl.TotalStall <= rc.TotalStall {
		t.Errorf("lossy link stall %v not above clean %v", rl.TotalStall, rc.TotalStall)
	}
}
