// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment end to end (user
// simulation, fixed-point datapath, or pipeline energy model); run with
//
//	go test -bench=. -benchmem
//
// to reproduce every result, or -bench=Fig12 for a single figure.
// cmd/evrbench prints the same tables with the full 59-user corpus.
package evr_test

import (
	"fmt"
	"testing"

	"evr/internal/abr"
	"evr/internal/capture"
	"evr/internal/codec"
	"evr/internal/experiments"
	"evr/internal/frame"
	"evr/internal/geom"
	"evr/internal/headtrace"
	"evr/internal/netsim"
	"evr/internal/projection"
	"evr/internal/pt"
	"evr/internal/pte"
	"evr/internal/quality"
	"evr/internal/scene"
	"evr/internal/tiling"
	"evr/internal/vision"
)

// benchUsers trades corpus size for benchmark runtime; shapes are stable
// from a handful of users on.
const benchUsers = 4

func BenchmarkFig03aPowerBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig3a(benchUsers)
		if len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig03bVRTax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig3b(benchUsers)
		if len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig05ObjectCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig5(benchUsers)
		if len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig06TrackingDurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig6(benchUsers)
		if len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig11FixedPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig11()
		if len(tb.Rows) != 7 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig12EnergySavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig12(benchUsers)
		if len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig13FPSBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig13(benchUsers)
		if len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig14StorageTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig14(benchUsers)
		if len(tb.Rows) != 20 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig15LiveOffline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig15(benchUsers)
		if len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig16HMPComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig16(benchUsers)
		if len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkFig17QualityAssessment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig17()
		if len(tb.Rows) != 4 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkPrototypePTE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.PrototypeTable()
		if len(tb.Rows) != 2 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkMissRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.MissRateTable(benchUsers)
		if len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

// --- Ablation studies (DESIGN.md §6). ---

func BenchmarkAblationSegmentLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationSegmentLength(benchUsers); len(tb.Rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkAblationMargin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationMargin(benchUsers); len(tb.Rows) != 4 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkAblationPTUs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationPTUs(); len(tb.Rows) != 4 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkAblationPMEM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationPMEM(); len(tb.Rows) != 4 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkAblationFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationFilter(); len(tb.Rows) != 2 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkAblationExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationExtensions(benchUsers); len(tb.Rows) != 4 {
			b.Fatal("unexpected row count")
		}
	}
}

// --- Microbenchmarks for the performance-critical kernels. ---

func benchFrame() (*frame.Frame, geom.Orientation, projection.Viewport) {
	v, _ := scene.ByName("RS")
	full := v.RenderFrame(0, projection.ERP, 256, 128)
	o := geom.Orientation{Yaw: 0.4, Pitch: -0.1}
	vp := projection.Viewport{Width: 64, Height: 64, FOVX: geom.Radians(110), FOVY: geom.Radians(110)}
	return full, o, vp
}

func BenchmarkPTReferenceRender(b *testing.B) {
	full, o, vp := benchFrame()
	cfg := pt.Config{Projection: projection.ERP, Filter: pt.Bilinear, Viewport: vp}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Render(cfg, full, o)
	}
	b.ReportMetric(float64(vp.Pixels()), "pixels/frame")
}

// BenchmarkRenderParallel measures the parallel tile-based render engine on
// a 1080p viewport against the serial reference. Output is byte-identical
// at every worker count; run with
//
//	go test -bench=RenderParallel -benchtime=3x
//
// and compare ns/op across the workers-N sub-benchmarks (the acceptance
// target is ≥ 2× over serial at 4+ workers on a multicore host).
func BenchmarkRenderParallel(b *testing.B) {
	v, _ := scene.ByName("RS")
	full := v.RenderFrame(0, projection.ERP, 512, 256)
	o := geom.Orientation{Yaw: 0.4, Pitch: -0.1}
	vp := projection.Viewport{Width: 1920, Height: 1080, FOVX: geom.Radians(110), FOVY: geom.Radians(110)}
	cfg := pt.Config{Projection: projection.ERP, Filter: pt.Bilinear, Viewport: vp}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pt.Render(cfg, full, o)
		}
		b.ReportMetric(float64(vp.Pixels()), "pixels/frame")
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := pt.RenderParallel(cfg, full, o, workers)
				pt.Recycle(out)
			}
			b.ReportMetric(float64(vp.Pixels()), "pixels/frame")
		})
	}
}

func BenchmarkPTEFixedPointRender(b *testing.B) {
	full, o, vp := benchFrame()
	e, err := pte.New(pte.DefaultConfig(projection.ERP, pt.Bilinear, vp))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Render(full, o)
	}
	b.ReportMetric(float64(vp.Pixels()), "pixels/frame")
}

func BenchmarkHeadTraceGeneration(b *testing.B) {
	v, _ := scene.ByName("Paris")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		headtrace.Generate(v, i%headtrace.DatasetUsers)
	}
}

func BenchmarkCodecEncodeFrame(b *testing.B) {
	v, _ := scene.ByName("Paris")
	full := v.RenderFrame(0, projection.ERP, 192, 96)
	enc, err := codec.NewEncoder(codec.Config{GOP: 30, Quality: 6, SearchRange: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.Encode(full); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeFrame(b *testing.B) {
	v, _ := scene.ByName("Paris")
	full := v.RenderFrame(0, projection.ERP, 192, 96)
	enc, _ := codec.NewEncoder(codec.Config{GOP: 1, Quality: 6, SearchRange: 0})
	data, _, err := enc.Encode(full)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.NewDecoder().Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaptureStitch(b *testing.B) {
	v, _ := scene.ByName("RS")
	rig := capture.SixCameraRig(64)
	images := rig.Capture(v, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.Stitch(images, projection.ERP, 128, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQualitySSIM(b *testing.B) {
	v, _ := scene.ByName("RS")
	a := v.RenderFrame(0, projection.ERP, 128, 64)
	c := v.RenderFrame(0.1, projection.ERP, 128, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quality.SSIM(a, c)
	}
}

func BenchmarkVisionDetect(b *testing.B) {
	v, _ := scene.ByName("Paris")
	full := v.RenderFrame(0, projection.ERP, 256, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.Detect(full, projection.ERP, vision.DefaultDetector())
	}
}

func BenchmarkStreamingSessionDES(b *testing.B) {
	s := netsim.DefaultSession(netsim.WiFi300())
	segs := make([]int64, 60)
	for i := range segs {
		segs[i] = 200_000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(segs, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkABRSession(b *testing.B) {
	ladder := abr.DefaultLadder()
	ctrl, err := abr.NewBufferController(ladder.Rungs(), 1.0)
	if err != nil {
		b.Fatal(err)
	}
	segs := make([]int64, 60)
	for i := range segs {
		segs[i] = 1_500_000
	}
	link := netsim.Link{BandwidthBps: 40e6, RTTSeconds: 5e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := abr.Simulate(link, ladder, ctrl, segs, 1.0, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTiledEncode(b *testing.B) {
	v, _ := scene.ByName("RS")
	frames := v.RenderVideo(projection.ERP, 192, 96, 2)
	cfg := codec.Config{GOP: 2, Quality: 6, SearchRange: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.Encode(cfg, frames, tiling.DefaultGrid(), 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuaternionSlerp(b *testing.B) {
	q := geom.QuatFromOrientation(geom.Orientation{Yaw: 0.3})
	r := geom.QuatFromOrientation(geom.Orientation{Yaw: 1.8, Pitch: 0.4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Slerp(r, float64(i%100)/100)
	}
}

// --- Comparison and extension tables. ---

func BenchmarkCmpRelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.RelatedWorkTable(benchUsers); len(tb.Rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkCmpStreamingQoE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.QoETable(benchUsers); len(tb.Rows) != 10 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkCmpPredictionAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.PredictionTable(benchUsers); len(tb.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkCmpABRDelivery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.ABRTable(benchUsers); len(tb.Rows) != 6 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkCmpMotionToPhoton(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.LatencyTable(); len(tb.Rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkAblationCodecFeatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.AblationCodecFeatures(); len(tb.Rows) != 4 {
			b.Fatal("unexpected row count")
		}
	}
}
