// Package evr is the public API of this repository: a full reproduction of
// "Energy-Efficient Video Processing for Virtual Reality" (Leng, Chen, Sun,
// Huang, Zhu — ISCA 2019).
//
// EVR attacks the "VR tax" — the projective transformation (PT) every 360°
// video frame pays before display — with two primitives:
//
//   - Semantic-Aware Streaming (SAS): the cloud detects and clusters the
//     visual objects users track, pre-renders per-cluster FOV videos, and
//     streams those; a FOV hit displays directly with no PT on device.
//   - Hardware-Accelerated Rendering (HAR): a fixed-point Projective
//     Transformation Engine (PTE) replaces the GPU for on-device PT.
//
// The facade re-exports the pieces a downstream user needs:
//
//	sys := evr.NewSystem()
//	video, _ := evr.VideoByName("Rhino")
//	sys.Prepare(video)
//	base, _ := sys.Evaluate("Rhino", evr.Baseline, evr.OnlineStreaming, evr.EvaluateOptions{Users: 10})
//	both, _ := sys.Evaluate("Rhino", evr.SH, evr.OnlineStreaming, evr.EvaluateOptions{Users: 10})
//	fmt.Printf("S+H saves %.0f%% device energy\n", both.DeviceSavingPct(base))
//
// Deeper layers (the PTE simulator, the codec, the HTTP streaming service,
// the pixel-exact player) are exposed through their own types below.
package evr

import (
	"net/http"
	"time"

	"evr/internal/abr"
	"evr/internal/capture"
	"evr/internal/chaos"
	"evr/internal/client"
	"evr/internal/cluster"
	"evr/internal/codec"
	"evr/internal/conformance"
	"evr/internal/core"
	"evr/internal/delivery"
	"evr/internal/experiments"
	"evr/internal/fixed"
	"evr/internal/frame"
	"evr/internal/headtrace"
	"evr/internal/hmd"
	"evr/internal/loadgen"
	"evr/internal/projection"
	"evr/internal/pt"
	"evr/internal/pte"
	"evr/internal/ptlut"
	"evr/internal/quality"
	"evr/internal/scene"
	"evr/internal/server"
	"evr/internal/store"
	"evr/internal/telemetry"
)

// System orchestration.
type (
	// System is an end-to-end EVR deployment (cloud analysis + device).
	System = core.System
	// Summary aggregates an evaluation run over a user population.
	Summary = core.Summary
	// EvaluateOptions tunes an evaluation run.
	EvaluateOptions = core.EvaluateOptions
)

// NewSystem returns a system at the paper's default design point.
func NewSystem() *System { return core.NewSystem() }

// Device variants and use-cases (§8.1).
type (
	// Variant selects which EVR primitives are active.
	Variant = client.Variant
	// UseCase selects the deployment scenario.
	UseCase = client.UseCase
)

const (
	// Baseline is today's pipeline: full streaming + GPU PT.
	Baseline = client.Baseline
	// S enables semantic-aware streaming only.
	S = client.S
	// H enables hardware-accelerated rendering only.
	H = client.H
	// SH combines both primitives.
	SH = client.SH

	// OnlineStreaming plays published content from an EVR server.
	OnlineStreaming = client.OnlineStreaming
	// LiveStreaming plays a live feed (SAS unavailable).
	LiveStreaming = client.LiveStreaming
	// OfflinePlayback plays from local storage (no network).
	OfflinePlayback = client.OfflinePlayback
)

// Content and traces.
type (
	// VideoSpec is a synthetic 360° video with ground-truth objects.
	VideoSpec = scene.VideoSpec
	// Trace is one user's head movement over one video.
	Trace = headtrace.Trace
)

// Videos returns the full synthetic stand-in catalog for the paper's
// video set.
func Videos() []VideoSpec { return scene.Catalog() }

// VideoByName looks up one catalog video.
func VideoByName(name string) (VideoSpec, bool) { return scene.ByName(name) }

// GenerateTrace produces the deterministic head trace of one user.
func GenerateTrace(v VideoSpec, user int) Trace { return headtrace.Generate(v, user) }

// DatasetUsers is the size of the modeled user corpus (59, as in the paper).
const DatasetUsers = headtrace.DatasetUsers

// Hardware.
type (
	// PTE is the Projective Transformation Engine simulator.
	PTE = pte.Engine
	// PTEConfig is its register file.
	PTEConfig = pte.Config
	// HMD describes a head-mounted display.
	HMD = hmd.Config
)

// NewPTE builds a PTE engine.
func NewPTE(cfg PTEConfig) (*PTE, error) { return pte.New(cfg) }

// OSVRHDK2 returns the paper's evaluation HMD.
func OSVRHDK2() HMD { return hmd.OSVRHDK2() }

// IMU replays a head trace as per-frame sensor readings.
type IMU = hmd.IMU

// NewIMU wraps a trace for replay.
func NewIMU(trace Trace) *IMU { return hmd.NewIMU(trace) }

// Streaming service and pixel-exact playback.
type (
	// Service is the EVR cloud streaming server.
	Service = server.Service
	// IngestConfig parameterizes the pixel ingest pipeline.
	IngestConfig = server.IngestConfig
	// Player is the HTTP playback client.
	Player = client.Player
	// Store is the log-structured SAS store.
	Store = store.Store
	// ServiceOptions tunes the serving layer: response cache budget,
	// admission control, and synthetic store latency for experiments.
	ServiceOptions = server.ServiceOptions
	// RespCacheStats is a snapshot of the server response cache.
	RespCacheStats = server.RespCacheStats
)

// NewService returns a streaming service over a fresh store.
func NewService() *Service { return server.NewService(store.New()) }

// NewServiceOpts returns a streaming service over a fresh store with an
// explicit serving-layer configuration.
func NewServiceOpts(opts ServiceOptions) *Service { return server.NewServiceOpts(store.New(), opts) }

// DefaultServiceOptions returns the serving-layer defaults (64 MiB response
// cache, no admission limit).
func DefaultServiceOptions() ServiceOptions { return server.DefaultServiceOptions() }

// DefaultIngestConfig returns a test-scale ingest pipeline configuration.
func DefaultIngestConfig() IngestConfig { return server.DefaultIngestConfig() }

// NewPlayer returns a playback client for an EVR server URL.
func NewPlayer(baseURL string) *Player { return client.NewPlayer(baseURL) }

// Multi-user load generation (cmd/evrload's engine).
type (
	// LoadConfig describes one multi-user load run against an EVR server.
	LoadConfig = loadgen.Config
	// LoadReport is the outcome: per-user results, per-pass aggregates,
	// and the request-latency distribution.
	LoadReport = loadgen.Report
)

// RunLoad executes a multi-user load run: Passes waves of Users concurrent
// playback sessions, each replaying its deterministic head trace.
func RunLoad(cfg LoadConfig) (*LoadReport, error) { return loadgen.Run(cfg) }

// ServeLocal exposes a service on an ephemeral loopback listener and
// returns its base URL plus a shutdown func — the in-process target for
// RunLoad and tests.
func ServeLocal(svc *Service) (baseURL string, shutdown func(), err error) {
	return loadgen.Serve(svc)
}

// Sharded serving tier (see internal/cluster): a consistent-hash router
// over N in-process Service replicas sharing one store, with an
// edge-cache tier absorbing Zipf-popular segments before any shard.
type (
	// Cluster is the routed serving tier. Its Handler exposes the same
	// HTTP surface as a single Service; KillShard/RestartShard change the
	// topology live.
	Cluster = cluster.Cluster
	// ClusterOptions configures shard count, ring virtual nodes, the edge
	// cache budget, and the per-shard serving options.
	ClusterOptions = cluster.Options
	// ClusterStats is a full cluster snapshot: router, edge, per-shard.
	ClusterStats = cluster.Stats
	// EdgeStats is the edge cache's point-in-time view.
	EdgeStats = cluster.EdgeStats
)

// NewCluster builds a routed serving tier over a fresh store (store nil)
// or an existing one.
func NewCluster(st *Store, opts ClusterOptions) (*Cluster, error) { return cluster.New(st, opts) }

// DefaultClusterOptions returns a 2-shard cluster with a 32 MiB edge
// cache and default per-shard serving options.
func DefaultClusterOptions() ClusterOptions { return cluster.DefaultOptions() }

// ServeHandler is ServeLocal for any handler — pass a Cluster's Handler
// to load-test the routed tier in-process.
func ServeHandler(h http.Handler) (baseURL string, shutdown func(), err error) {
	return loadgen.ServeHandler(h)
}

// Telemetry: the shared observability core (see internal/telemetry).
type (
	// Tracer records per-frame pipeline-stage timings; assign one to
	// Player.Trace to trace playback (nil = tracing off, near-zero cost).
	Tracer = telemetry.Tracer
	// StageSummary is one pipeline stage's aggregate timing report.
	StageSummary = telemetry.StageSummary
	// MetricsRegistry is a named-metric registry (counters, gauges,
	// histograms) with Prometheus text exposition.
	MetricsRegistry = telemetry.Registry
)

// NewTracer returns a pipeline tracer keeping the last `recent` per-frame
// traces (<= 0 uses the default ring size).
func NewTracer(recent int) *Tracer { return telemetry.NewTracer(recent) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Quality assessment (§8.6).
type (
	// Assessor scores panoramic video by projecting to viewer perspectives.
	Assessor = quality.Assessor
	// QualityReport holds the per-view and mean PSNR/SSIM scores.
	QualityReport = quality.Report
)

// Production-side and delivery extensions.
type (
	// Rig is a multi-camera capture assembly (Fig. 1 left half).
	Rig = capture.Rig
	// Ladder is an adaptive-bitrate quality ladder.
	Ladder = abr.Ladder
)

// SixCameraRig returns the canonical cube capture rig.
func SixCameraRig(sensorRes int) Rig { return capture.SixCameraRig(sensorRes) }

// DefaultLadder returns the three-rung ABR ladder.
func DefaultLadder() Ladder { return abr.DefaultLadder() }

// Pose-quantized mapping-LUT render path (see internal/ptlut): memoizes the
// per-pixel mapping of a (pose, projection, viewport, input-dims) tuple in a
// bytes-budgeted LRU so repeated poses skip the mapping stage entirely.
type (
	// PTConfig is the reference renderer's configuration (projection,
	// filter, viewport) — also what a LUTRenderer is built around.
	PTConfig = pt.Config
	// LUTCache is the bytes-budgeted LRU of mapping tables with
	// singleflight build coalescing; share one across players and ingests.
	LUTCache = ptlut.Cache
	// LUTCacheStats is a point-in-time snapshot of a LUTCache.
	LUTCacheStats = ptlut.CacheStats
	// LUTRenderer renders FOV frames through the mapping-LUT cache. The
	// zero LUTOptions make it byte-identical to the reference renderer.
	LUTRenderer = ptlut.Renderer
	// LUTOptions tunes the LUT accuracy/sharing trade-off.
	LUTOptions = ptlut.Options
)

// DefaultLUTQuantStep is the default pose-grid step (0.25°) for quantized
// LUT mode.
const DefaultLUTQuantStep = ptlut.DefaultQuantStep

// NewLUTCache returns a mapping-table cache with the given byte budget
// (<= 0 uses the 256 MiB default), optionally registering its metrics.
func NewLUTCache(maxBytes int64, reg *MetricsRegistry) *LUTCache {
	return ptlut.NewCache(maxBytes, reg)
}

// NewLUTRenderer builds a LUT-backed renderer for one render configuration.
func NewLUTRenderer(cfg PTConfig, cache *LUTCache, opts LUTOptions) (*LUTRenderer, error) {
	return ptlut.NewRenderer(cfg, cache, opts)
}

// Viewport-adaptive tiled delivery (see internal/delivery and DESIGN.md
// §14): a per-segment three-way policy between the pre-rendered FOV
// stream, a predicted-viewport tile set over a low-res backfill, and the
// full original panorama.
type (
	// DeliveryMode identifies one arm of the per-segment policy (FOV,
	// tiled, orig) or ModeAuto to let the policy decide.
	DeliveryMode = delivery.Mode
	// DeliveryPolicy is the three-way decision configuration: predictor-
	// confidence floor, link model, and bandwidth safety margin.
	DeliveryPolicy = delivery.PolicyConfig
	// TiledConfig turns on tiled delivery in a Player (assign to
	// Player.Tiled); the zero value leaves the classic path untouched.
	TiledConfig = client.TiledConfig
)

// Delivery mode constants for TiledConfig.Force and DeliveryPolicy use.
const (
	DeliveryAuto  = delivery.ModeAuto
	DeliveryFOV   = delivery.ModeFOV
	DeliveryTiled = delivery.ModeTiled
	DeliveryOrig  = delivery.ModeOrig
)

// DefaultDeliveryPolicy returns the policy used when TiledConfig leaves it
// unset: 0.5 confidence floor, WiFi link model, 0.8 bandwidth safety.
func DefaultDeliveryPolicy(segmentDurationSec float64) DeliveryPolicy {
	return delivery.DefaultPolicy(segmentDurationSec)
}

// Conformance: the differential + metamorphic testing oracle that pins the
// float reference, the fixed-point PTE datapath, and the GPU model against
// each other (see internal/conformance and cmd/evrconform).
type (
	// ConformanceCase is one (projection, filter, pose) corpus entry.
	ConformanceCase = conformance.Case
	// ConformanceManifest is an executed corpus: golden checksums, measured
	// divergence metrics, and per-class error budgets.
	ConformanceManifest = conformance.Manifest
	// ConformanceBudget is the acceptance envelope of one divergence class.
	ConformanceBudget = conformance.Budget
)

// ConformanceCorpus returns the full deterministic conformance case list.
func ConformanceCorpus() []ConformanceCase { return conformance.Corpus() }

// ConformanceFastCorpus returns the quick-gate subset of the corpus.
func ConformanceFastCorpus() []ConformanceCase { return conformance.FastCorpus() }

// RunConformance sweeps the cases through all three render implementations,
// enforcing byte-identity invariants and measuring fixed-point divergence.
func RunConformance(cases []ConformanceCase) (*ConformanceManifest, error) {
	return conformance.Generate(cases)
}

// RunConformanceMetamorphic executes the oracle-free metamorphic properties
// (identity passthrough, yaw equivariance, seam continuity, projection round
// trips) and returns the violations (empty = all hold).
func RunConformanceMetamorphic() []string { return conformance.RunMetamorphic() }

// Live ingest and chaos-driven serving (see internal/server/live.go,
// internal/chaos, and DESIGN.md §15): segments are produced on a clock
// schedule while serving, ahead-of-edge requests get 425 + Retry-After,
// and deterministic seeded fault schedules gate survival.
type (
	// LiveStream ingests a video on a publish schedule with bounded
	// pipeline backpressure; hand it to Service.ServeLive or
	// Cluster.ServeLive before Start.
	LiveStream = server.LiveStream
	// LiveOptions configures live ingest: segment interval, pipeline
	// queue depth, and the clock (nil = wall clock).
	LiveOptions = server.LiveOptions
	// LiveClock is the schedule clock interface; VirtualClock implements
	// it for deterministic tests and chaos runs.
	LiveClock = server.Clock
	// VirtualClock is a manually-advanced clock for deterministic live
	// schedules.
	VirtualClock = server.VirtualClock
	// ChaosScenario is a declarative fault-injection scenario: fleet
	// classes, live spec, seeded fault schedule, and survival SLOs.
	ChaosScenario = chaos.Scenario
	// ChaosEngine applies a scenario's faults to a load run and keeps
	// the executed schedule for the determinism gate.
	ChaosEngine = chaos.Engine
	// ChaosGateResult is the survival verdict of one chaos run.
	ChaosGateResult = chaos.GateResult
	// ClassSpec describes one heterogeneous fleet class (projection,
	// delivery mode, PTE bitwidths, cache size, link model).
	ClassSpec = loadgen.ClassSpec
	// ClassStats is one class's aggregate report: hit rates, stalls,
	// energy, and time-behind-live freshness percentiles.
	ClassStats = loadgen.ClassStats
)

// PublishedAtHeader carries a live segment's immutable publish timestamp
// (UnixNano) on every serve.
const PublishedAtHeader = server.PublishedAtHeader

// NewLiveStream builds a live ingest pipeline for one video over a store;
// cfg.Live must be set.
func NewLiveStream(v VideoSpec, cfg IngestConfig, st *Store) (*LiveStream, error) {
	return server.NewLiveStream(v, cfg, st)
}

// NewVirtualClock returns a virtual clock starting at origin.
func NewVirtualClock(origin time.Time) *VirtualClock { return server.NewVirtualClock(origin) }

// LoadChaosScenario resolves a builtin scenario name or a JSON file path.
func LoadChaosScenario(nameOrPath string) (*ChaosScenario, error) { return chaos.Load(nameOrPath) }

// ChaosBuiltinNames lists the compiled-in chaos scenarios.
func ChaosBuiltinNames() []string { return chaos.BuiltinNames() }

// NewChaosEngine builds the fault engine for one validated scenario.
func NewChaosEngine(sc *ChaosScenario) *ChaosEngine { return chaos.NewEngine(sc) }

// EvaluateChaos gates a finished load run against the scenario's SLOs.
func EvaluateChaos(sc *ChaosScenario, rep *LoadReport) ChaosGateResult {
	return chaos.Evaluate(sc, rep)
}

// Spherically-weighted quality metrics and the SPORT optimizer (DESIGN.md
// §16): solid-angle-aware scoring (S-PSNR, WS-PSNR), per-latitude-band codec
// rate control, and latitude-region datapath truncation plans, plus the
// sweep that searches them jointly against the flat pipeline.
type (
	// Frame is the RGB24 raster every render and codec path shares.
	Frame = frame.Frame
	// Projection identifies a panorama layout (ERP, CMP, EAC).
	Projection = projection.Method
	// WeightTable holds per-pixel solid-angle weights for one raster
	// geometry, with weighted metrics and latitude-band error profiles.
	WeightTable = quality.WeightTable
	// FixedFormat is a PTE fixed-point format ([total bits, integer bits]).
	FixedFormat = fixed.Format
	// SphericalRateController runs one codec rate controller per latitude
	// band, steering bytes toward the latitudes viewers actually see.
	SphericalRateController = codec.SphericalRateController
	// BandAllocation is one latitude band of a spherical byte split.
	BandAllocation = codec.BandAllocation
	// TruncationPlan maps |latitude| regions to datapath formats.
	TruncationPlan = pte.TruncationPlan
	// TruncationRegion is one region of a TruncationPlan.
	TruncationRegion = pte.TruncationRegion
	// SPORTConfig parameterizes the SPORT sweep.
	SPORTConfig = experiments.SPORTConfig
	// SPORTResult is the sweep outcome: flat vs best SPORT pipeline.
	SPORTResult = experiments.SPORTResult
)

// Projection constants for the quality metrics and weight tables.
const (
	ERP = projection.ERP
	CMP = projection.CMP
	EAC = projection.EAC
)

// Q2810 is the paper's PTE design point, [28, 10].
var Q2810 = fixed.Q2810

// NewFrame allocates a w×h RGB frame.
func NewFrame(w, h int) *Frame { return frame.New(w, h) }

// SPSNR scores two equally-sized panoramas by sampling both at a uniform
// sphere point set (the S-PSNR metric). Identical frames return +Inf.
func SPSNR(m Projection, a, b *Frame) (float64, error) { return quality.SPSNR(m, a, b) }

// WSPSNR scores two equally-sized panoramas with raster-cell solid-angle
// weighting (the WS-PSNR metric).
func WSPSNR(m Projection, a, b *Frame) (float64, error) { return quality.WSPSNR(m, a, b) }

// SphericalWeights returns the cached solid-angle weight table of a w×h
// panorama raster under the projection (read-only).
func SphericalWeights(m Projection, w, h int) (*WeightTable, error) {
	return quality.SphericalWeights(m, w, h)
}

// NewSphericalRateController builds a per-latitude-band rate controller for
// h-row frames splitting targetBytes across bands (area-weighted when
// weighted is true; weighted=false reproduces the flat controller per band).
func NewSphericalRateController(h, bands, targetBytes, initialQ int, weighted bool) (*SphericalRateController, error) {
	return codec.NewSphericalRateController(h, bands, targetBytes, initialQ, weighted)
}

// FlatTruncationPlan returns the single-region plan running the whole
// datapath in f — the flat pipeline every SPORT plan is gated against.
func FlatTruncationPlan(f FixedFormat) TruncationPlan { return pte.FlatPlan(f) }

// RunSPORT executes the spherically-weighted rate-control + truncation
// sweep; the result is deterministic for a given configuration.
func RunSPORT(cfg SPORTConfig) (SPORTResult, error) { return experiments.SPORT(cfg) }

// SPORTExperimentTable renders a sweep result as an experiment table.
func SPORTExperimentTable(r SPORTResult) ExperimentTable { return experiments.SPORTTable(r) }

// ExperimentTable is one regenerated paper table/figure.
type ExperimentTable = experiments.Table

// RunExperiments regenerates every paper table and figure at the given
// user-population size (the full corpus is DatasetUsers).
func RunExperiments(users int) []ExperimentTable { return experiments.All(users) }

// RunAblations runs the beyond-paper ablation studies and comparisons.
func RunAblations(users int) []ExperimentTable { return experiments.Ablations(users) }
